package cpu

import (
	"fmt"
	"testing"

	"smarco/internal/isa"
	"smarco/internal/kernels"
	"smarco/internal/mem"
	"smarco/internal/sim"
)

// genProgram builds a random but always-terminating program: ALU ops over
// scratch registers, loads/stores within a private window, and forward-only
// branches, ending with stores of sampled registers for comparison and a
// HALT. a0 = data window, a1 = output window.
func genProgram(rng *sim.RNG, length int) *isa.Program {
	aluOps := []isa.Opcode{
		isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU,
	}
	immOps := []isa.Opcode{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI}
	loads := []isa.Opcode{isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.LWU, isa.LD}
	stores := []isa.Opcode{isa.SB, isa.SH, isa.SW, isa.SD}
	branches := []isa.Opcode{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
	// Scratch registers: t0-t6, s2-s11 (never a0/a1).
	scratch := []uint8{5, 6, 7, 28, 29, 30, 31, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27}
	reg := func() uint8 { return scratch[rng.Intn(len(scratch))] }

	var insts []isa.Inst
	for len(insts) < length {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			insts = append(insts, isa.Inst{Op: aluOps[rng.Intn(len(aluOps))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 4, 5:
			insts = append(insts, isa.Inst{Op: immOps[rng.Intn(len(immOps))], Rd: reg(), Rs1: reg(), Imm: int64(rng.Intn(2048)) - 1024})
		case 6:
			// Aligned load within the 256-byte data window (off a0 = r10).
			op := loads[rng.Intn(len(loads))]
			sz := op.AccessSize()
			off := int64(rng.Intn(256/sz)) * int64(sz)
			insts = append(insts, isa.Inst{Op: op, Rd: reg(), Rs1: 10, Imm: off})
		case 7:
			op := stores[rng.Intn(len(stores))]
			sz := op.AccessSize()
			off := int64(rng.Intn(256/sz)) * int64(sz)
			insts = append(insts, isa.Inst{Op: op, Rs1: 10, Rs2: reg(), Imm: off})
		case 8:
			// Forward branch skipping 1-3 instructions (always terminates).
			target := len(insts) + 2 + rng.Intn(3)
			insts = append(insts, isa.Inst{Op: branches[rng.Intn(len(branches))], Rs1: reg(), Rs2: reg(), Imm: int64(target)})
		case 9:
			insts = append(insts, isa.Inst{Op: isa.LI, Rd: reg(), Imm: int64(rng.Uint64())})
		}
	}
	// Patch branches whose target ran past the end.
	for i := range insts {
		if insts[i].Op.IsBranch() && insts[i].Imm > int64(length) {
			insts[i].Imm = int64(length)
		}
	}
	// Epilogue: dump scratch registers to the output window.
	for i, r := range scratch {
		insts = append(insts, isa.Inst{Op: isa.SD, Rs1: 11, Rs2: r, Imm: int64(i * 8)})
	}
	insts = append(insts, isa.Inst{Op: isa.HALT})
	return &isa.Program{Name: "fuzz", Insts: insts, Labels: map[string]int{}}
}

// crossCheck runs prog on both the functional machine and the cycle-level
// core (through the full NoC/DRAM stack) with the same initial memory image
// and requires identical memory outcomes in both the output window (nOut
// bytes) and the 256-byte data window.
func crossCheck(t testing.TB, label string, prog *isa.Program, initial []byte, nOut, budget int) {
	t.Helper()
	const dataBase, outBase = 0x8000, 0x9000

	// Golden run.
	gold := mem.NewSparse()
	gold.WriteBytes(dataBase, initial)
	gm := isa.NewMachine(gold)
	gm.Regs.Set(10, dataBase)
	gm.Regs.Set(11, outBase)
	if err := gm.Run(prog, 2_000_000); err != nil {
		t.Fatalf("%s: golden: %v", label, err)
	}

	// Cycle-level run with the same initial image.
	r := newRig(t, 1, testCfg())
	r.store.WriteBytes(dataBase, initial)
	assign(r, 0, Work{TaskID: 1, Prog: prog, CodeBase: codeBase,
		Args: [8]int64{dataBase, outBase}})
	r.runUntilDone(t, 1, budget)

	for i := 0; i < nOut; i++ {
		if got, want := r.store.ByteAt(outBase+uint64(i)), gold.ByteAt(outBase+uint64(i)); got != want {
			t.Fatalf("%s: output byte %d differs: %#x vs %#x", label, i, got, want)
		}
	}
	for i := 0; i < 256; i++ {
		if got, want := r.store.ByteAt(dataBase+uint64(i)), gold.ByteAt(dataBase+uint64(i)); got != want {
			t.Fatalf("%s: data byte %d differs: %#x vs %#x", label, i, got, want)
		}
	}
}

func randomWindow(rng *sim.RNG) []byte {
	initial := make([]byte, 256)
	for i := range initial {
		initial[i] = byte(rng.Uint64())
	}
	return initial
}

// TestCoreMatchesGoldenInterpreter runs random programs on both the
// functional machine and the cycle-level core and requires identical memory
// outcomes.
func TestCoreMatchesGoldenInterpreter(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		rng := sim.NewRNG(seed * 77)
		prog := genProgram(rng, 60+rng.Intn(120))
		crossCheck(t, fmt.Sprintf("seed %d", seed), prog, randomWindow(rng), 17*8, 400_000)
	}
}

// ccScratch are the registers random programs may freely clobber (never
// a0/a1, never the loop counters r9/r4). ccDump is everything the shared
// epilogue writes out for comparison.
var ccScratch = []uint8{5, 6, 7, 28, 29, 30, 31, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27}

var ccDump = append(append([]uint8{}, ccScratch...), 9, 4)

// ccEpilogue dumps every observable register to the output window and halts.
func ccEpilogue(insts []isa.Inst) []isa.Inst {
	for i, r := range ccDump {
		insts = append(insts, isa.Inst{Op: isa.SD, Rs1: 11, Rs2: r, Imm: int64(i * 8)})
	}
	return append(insts, isa.Inst{Op: isa.HALT})
}

// genFPProgram generates floating-point-heavy programs: arithmetic (incl.
// FDIV, so Inf/NaN bit patterns flow through), comparisons, conversions in
// both directions, and FP spills through the memory system.
func genFPProgram(rng *sim.RNG, length int) *isa.Program {
	fpArith := []isa.Opcode{isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMIN, isa.FMAX}
	fpCmp := []isa.Opcode{isa.FLT, isa.FLE, isa.FEQ}
	reg := func() uint8 { return ccScratch[rng.Intn(len(ccScratch))] }

	var insts []isa.Inst
	for i, r := range ccScratch {
		insts = append(insts, isa.Inst{Op: isa.LI, Rd: r, Imm: int64(rng.Intn(4096)) - 2048})
		if i%2 == 0 {
			insts = append(insts, isa.Inst{Op: isa.FCVTDL, Rd: r, Rs1: r})
		}
	}
	for len(insts) < length {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			insts = append(insts, isa.Inst{Op: fpArith[rng.Intn(len(fpArith))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 5, 6:
			insts = append(insts, isa.Inst{Op: fpCmp[rng.Intn(len(fpCmp))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 7:
			insts = append(insts, isa.Inst{Op: isa.FCVTDL, Rd: reg(), Rs1: reg()})
		case 8:
			insts = append(insts, isa.Inst{Op: isa.FCVTLD, Rd: reg(), Rs1: reg()})
		case 9:
			// Spill/reload a float through the data window so raw FP bit
			// patterns traverse the store buffer and DRAM path.
			off := int64(rng.Intn(32)) * 8
			insts = append(insts,
				isa.Inst{Op: isa.SD, Rs1: 10, Rs2: reg(), Imm: off},
				isa.Inst{Op: isa.LD, Rd: reg(), Rs1: 10, Imm: off})
		}
	}
	return &isa.Program{Name: "fp", Insts: ccEpilogue(insts), Labels: map[string]int{}}
}

// TestCrossCheckFPOps: floating-point semantics of the cycle-level core
// (multi-cycle FP latencies, FP values through the memory system) must match
// the functional machine bit-for-bit.
func TestCrossCheckFPOps(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := sim.NewRNG(seed*991 + 5)
		prog := genFPProgram(rng, 60+rng.Intn(100))
		crossCheck(t, fmt.Sprintf("fp seed %d", seed), prog, randomWindow(rng), len(ccDump)*8, 400_000)
	}
}

// genLoopProgram emits sequential and occasionally nested backward loops,
// each bounded by a dedicated down-counter (r9, r4 for the inner level) that
// the loop body can never clobber.
func genLoopProgram(rng *sim.RNG, nLoops int) *isa.Program {
	const ctr, ctr2 = 9, 4
	aluOps := []isa.Opcode{isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR, isa.MUL}
	reg := func() uint8 { return ccScratch[rng.Intn(len(ccScratch))] }
	var insts []isa.Inst
	emitBody := func() {
		switch rng.Intn(4) {
		case 0:
			insts = append(insts, isa.Inst{Op: aluOps[rng.Intn(len(aluOps))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 1:
			insts = append(insts, isa.Inst{Op: isa.ADDI, Rd: reg(), Rs1: reg(), Imm: int64(rng.Intn(64)) - 32})
		case 2:
			insts = append(insts, isa.Inst{Op: isa.LD, Rd: reg(), Rs1: 10, Imm: int64(rng.Intn(32)) * 8})
		case 3:
			insts = append(insts, isa.Inst{Op: isa.SD, Rs1: 10, Rs2: reg(), Imm: int64(rng.Intn(32)) * 8})
		}
	}
	// close emits the decrement-and-branch-back tail for counter c.
	close := func(c uint8, start int) {
		insts = append(insts,
			isa.Inst{Op: isa.ADDI, Rd: c, Rs1: c, Imm: -1},
			isa.Inst{Op: isa.BLT, Rs1: 0, Rs2: c, Imm: int64(start)})
	}
	for l := 0; l < nLoops; l++ {
		if rng.Intn(3) == 0 {
			// Nested pair: the inner counter re-initializes every outer trip.
			insts = append(insts, isa.Inst{Op: isa.LI, Rd: ctr, Imm: int64(1 + rng.Intn(4))})
			outer := len(insts)
			emitBody()
			insts = append(insts, isa.Inst{Op: isa.LI, Rd: ctr2, Imm: int64(1 + rng.Intn(4))})
			inner := len(insts)
			emitBody()
			close(ctr2, inner)
			close(ctr, outer)
		} else {
			insts = append(insts, isa.Inst{Op: isa.LI, Rd: ctr, Imm: int64(1 + rng.Intn(8))})
			start := len(insts)
			for b := 1 + rng.Intn(3); b > 0; b-- {
				emitBody()
			}
			close(ctr, start)
		}
	}
	return &isa.Program{Name: "loops", Insts: ccEpilogue(insts), Labels: map[string]int{}}
}

// TestCrossCheckBackwardLoops: backward branches exercise the taken-branch
// predictor path and repeated memory traffic; outcomes must match the
// functional machine.
func TestCrossCheckBackwardLoops(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := sim.NewRNG(seed*313 + 11)
		prog := genLoopProgram(rng, 3+rng.Intn(5))
		crossCheck(t, fmt.Sprintf("loop seed %d", seed), prog, randomWindow(rng), len(ccDump)*8, 600_000)
	}
}

// genUnalignedProgram stresses arbitrary-alignment accesses and
// adjacent-overlap store/load pairs, the store buffer's partial-overlap
// forwarding and drain logic in particular.
func genUnalignedProgram(rng *sim.RNG, length int) *isa.Program {
	loads := []isa.Opcode{isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.LWU, isa.LD}
	stores := []isa.Opcode{isa.SB, isa.SH, isa.SW, isa.SD}
	reg := func() uint8 { return ccScratch[rng.Intn(len(ccScratch))] }
	var insts []isa.Inst
	for _, r := range ccScratch[:6] {
		insts = append(insts, isa.Inst{Op: isa.LI, Rd: r, Imm: int64(rng.Uint64())})
	}
	for len(insts) < length {
		switch rng.Intn(6) {
		case 0:
			op := loads[rng.Intn(len(loads))]
			off := int64(rng.Intn(257 - op.AccessSize()))
			insts = append(insts, isa.Inst{Op: op, Rd: reg(), Rs1: 10, Imm: off})
		case 1:
			op := stores[rng.Intn(len(stores))]
			off := int64(rng.Intn(257 - op.AccessSize()))
			insts = append(insts, isa.Inst{Op: op, Rs1: 10, Rs2: reg(), Imm: off})
		case 2:
			// Wide store, then an overlapping narrower load shifted by 1-7
			// bytes: must forward or stall, never read stale bytes.
			off := int64(rng.Intn(241))
			op := loads[rng.Intn(len(loads))]
			delta := int64(1 + rng.Intn(7))
			if off+delta+int64(op.AccessSize()) > 256 {
				delta = 256 - off - int64(op.AccessSize())
			}
			insts = append(insts,
				isa.Inst{Op: isa.SD, Rs1: 10, Rs2: reg(), Imm: off},
				isa.Inst{Op: op, Rd: reg(), Rs1: 10, Imm: off + delta})
		case 3:
			// Narrow store inside a region, then a wide load over it: the
			// load must observe the merged bytes.
			off := int64(rng.Intn(246))
			op := stores[rng.Intn(2)] // SB or SH
			delta := int64(rng.Intn(7))
			insts = append(insts,
				isa.Inst{Op: op, Rs1: 10, Rs2: reg(), Imm: off + delta},
				isa.Inst{Op: isa.LD, Rd: reg(), Rs1: 10, Imm: off})
		case 4:
			insts = append(insts, isa.Inst{Op: isa.XOR, Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 5:
			insts = append(insts, isa.Inst{Op: isa.LI, Rd: reg(), Imm: int64(rng.Uint64())})
		}
	}
	return &isa.Program{Name: "unaligned", Insts: ccEpilogue(insts), Labels: map[string]int{}}
}

// TestCrossCheckUnalignedAdjacent: unaligned and adjacent-overlapping
// accesses must produce the same memory image as the functional machine.
func TestCrossCheckUnalignedAdjacent(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := sim.NewRNG(seed*577 + 3)
		prog := genUnalignedProgram(rng, 50+rng.Intn(80))
		crossCheck(t, fmt.Sprintf("unaligned seed %d", seed), prog, randomWindow(rng), len(ccDump)*8, 600_000)
	}
}

// buildProgram decodes fuzz input into an always-terminating program. The
// stream is framed as 4-byte groups (category + 3 operand bytes); unknown
// or truncated input degrades to NOPs, never to non-termination: branches
// are forward-only except the bounded down-counter loop construct.
func buildProgram(data []byte) *isa.Program {
	if len(data) > 2048 {
		data = data[:2048]
	}
	aluOps := []isa.Opcode{
		isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
		isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU,
	}
	immOps := []isa.Opcode{
		isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI, isa.SLTI,
	}
	loads := []isa.Opcode{isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.LWU, isa.LD}
	stores := []isa.Opcode{isa.SB, isa.SH, isa.SW, isa.SD}
	branches := []isa.Opcode{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
	fpArith := []isa.Opcode{isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMIN, isa.FMAX}
	fpMisc := []isa.Opcode{isa.FLT, isa.FLE, isa.FEQ, isa.FCVTDL, isa.FCVTLD}

	pos := 0
	next := func() byte {
		if pos < len(data) {
			b := data[pos]
			pos++
			return b
		}
		return 0
	}
	reg := func(b byte) uint8 { return ccScratch[int(b)%len(ccScratch)] }

	var insts []isa.Inst
	for pos < len(data) && len(insts) < 600 {
		c := next() % 14
		a, b, d := next(), next(), next()
		switch c {
		case 0, 1:
			insts = append(insts, isa.Inst{Op: aluOps[int(a)%len(aluOps)], Rd: reg(b), Rs1: reg(d), Rs2: reg(a >> 3)})
		case 2:
			insts = append(insts, isa.Inst{Op: immOps[int(a)%len(immOps)], Rd: reg(b), Rs1: reg(d >> 2), Imm: int64(d) - 128})
		case 3:
			insts = append(insts, isa.Inst{Op: isa.LI, Rd: reg(b), Imm: int64(int16(uint16(a)<<8 | uint16(d)))})
		case 4:
			op := loads[int(a)%len(loads)]
			sz := int64(op.AccessSize())
			insts = append(insts, isa.Inst{Op: op, Rd: reg(b), Rs1: 10, Imm: (int64(d) % (256 / sz)) * sz})
		case 5:
			op := stores[int(a)%len(stores)]
			sz := int64(op.AccessSize())
			insts = append(insts, isa.Inst{Op: op, Rs1: 10, Rs2: reg(b), Imm: (int64(d) % (256 / sz)) * sz})
		case 6:
			op := loads[int(a)%len(loads)]
			insts = append(insts, isa.Inst{Op: op, Rd: reg(b), Rs1: 10, Imm: int64(int(d) % (257 - op.AccessSize()))})
		case 7:
			op := stores[int(a)%len(stores)]
			insts = append(insts, isa.Inst{Op: op, Rs1: 10, Rs2: reg(b), Imm: int64(int(d) % (257 - op.AccessSize()))})
		case 8:
			off := int64(int(d) % 241)
			op := loads[int(a)%len(loads)]
			delta := int64(1 + int(b)%7)
			if off+delta+int64(op.AccessSize()) > 256 {
				delta = 256 - off - int64(op.AccessSize())
			}
			insts = append(insts,
				isa.Inst{Op: isa.SD, Rs1: 10, Rs2: reg(b), Imm: off},
				isa.Inst{Op: op, Rd: reg(a), Rs1: 10, Imm: off + delta})
		case 9:
			insts = append(insts, isa.Inst{Op: branches[int(a)%len(branches)], Rs1: reg(b), Rs2: reg(d),
				Imm: int64(len(insts) + 2 + int(a)%3)})
		case 10:
			insts = append(insts, isa.Inst{Op: fpArith[int(a)%len(fpArith)], Rd: reg(b), Rs1: reg(d), Rs2: reg(a >> 3)})
		case 11:
			op := fpMisc[int(a)%len(fpMisc)]
			insts = append(insts, isa.Inst{Op: op, Rd: reg(b), Rs1: reg(d), Rs2: reg(a >> 3)})
		case 12:
			// Bounded backward loop over the dedicated counter r9.
			insts = append(insts, isa.Inst{Op: isa.LI, Rd: 9, Imm: int64(1 + int(b)%8)})
			start := len(insts)
			insts = append(insts,
				isa.Inst{Op: aluOps[int(a)%len(aluOps)], Rd: reg(d), Rs1: reg(d), Rs2: reg(a)},
				isa.Inst{Op: isa.ADDI, Rd: 9, Rs1: 9, Imm: -1},
				isa.Inst{Op: isa.BLT, Rs1: 0, Rs2: 9, Imm: int64(start)})
		case 13:
			insts = append(insts, isa.Inst{Op: isa.JAL, Rd: reg(b), Imm: int64(len(insts) + 2 + int(a)%3)})
		}
	}
	// Clamp forward targets that ran past the end to the epilogue start.
	bodyLen := int64(len(insts))
	for i := range insts {
		fwd := insts[i].Op.IsBranch() || insts[i].Op == isa.JAL
		if fwd && insts[i].Imm > int64(i) && insts[i].Imm > bodyLen {
			insts[i].Imm = bodyLen
		}
	}
	return &isa.Program{Name: "fuzz", Insts: ccEpilogue(insts), Labels: map[string]int{}}
}

// kernelMix re-encodes a kernel program's instruction stream into
// buildProgram's framing, seeding the fuzzer with the six benchmarks'
// real opcode mixes (category, op-variant, dest, source/offset per inst).
func kernelMix(p *isa.Program) []byte {
	out := make([]byte, 0, len(p.Insts)*4)
	for i, in := range p.Insts {
		var c byte
		switch {
		case in.Op == isa.LI:
			c = 3
		case in.Op == isa.FCVTDL, in.Op == isa.FCVTLD, in.Op == isa.FLT, in.Op == isa.FLE, in.Op == isa.FEQ:
			c = 11
		case in.Op.IsFP():
			c = 10
		case in.Op.IsLoad():
			c = 4
			if in.Imm%8 != 0 {
				c = 6
			}
		case in.Op.IsStore():
			c = 5
			if in.Imm%8 != 0 {
				c = 7
			}
		case in.Op.IsBranch():
			c = 9
			if in.Imm <= int64(i) {
				c = 12 // backward: map to the bounded-loop construct
			}
		case in.Op == isa.JAL, in.Op == isa.JALR:
			c = 13
		case in.Op.Fmt() == isa.FmtI:
			c = 2
		default:
			c = 0
		}
		out = append(out, c, byte(in.Op), byte(in.Rd), byte(in.Imm))
	}
	return out
}

// FuzzCrossCheck is the native fuzz target: any input decodes to a bounded
// program that must behave identically on the functional machine and the
// cycle-level core.
func FuzzCrossCheck(f *testing.F) {
	for _, name := range kernels.Names {
		w := kernels.MustNew(name, kernels.Config{Seed: 1, Tasks: 2})
		seen := map[*isa.Program]bool{}
		for _, task := range w.Tasks {
			if seen[task.Prog] {
				continue
			}
			seen[task.Prog] = true
			f.Add(kernelMix(task.Prog))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := buildProgram(data)
		initial := make([]byte, 256)
		for i := range initial {
			b := byte(0x5A)
			if len(data) > 0 {
				b = data[i%len(data)]
			}
			initial[i] = b ^ byte(i*7)
		}
		crossCheck(t, "fuzz", prog, initial, len(ccDump)*8, 2_000_000)
	})
}
