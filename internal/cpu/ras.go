package cpu

import (
	"fmt"
	"sort"

	"smarco/internal/fault"
	"smarco/internal/noc"
	"smarco/internal/sim"
)

// Hard core failures (see internal/fault): a killed core's pipeline stops
// issuing, but the surrounding RAS machinery keeps the chip consistent so
// the sub-scheduler can re-dispatch the core's in-flight tasks elsewhere:
//
//  1. Drain — writes already on the wire are allowed to complete; their
//     acks carry the pre-image of the bytes they overwrote (stamped by the
//     memory controller in serve order) and are folded into the undo log.
//     Requests still queued inside the core are simply dropped.
//  2. Rollback — the undo log is replayed oldest-first per byte, restoring
//     memory to its pre-task state so the non-idempotent tasks can safely
//     re-execute from scratch on a surviving core.
//  3. Migration — the orphaned Work items are handed back to the
//     sub-scheduler over a dedicated port and re-enter the chain tables.
//
// The SPM array is modelled as surviving the failure, so remote-SPM service
// continues; rollback covers only controller-stamped (DRAM) writes, which
// is sufficient for tasks whose shared state lives in DRAM (remote-SPM
// stores carry no pre-image and are not undone).

// EnableRAS arms the core's failure machinery with the chip's injector.
func (c *Core) EnableRAS(inj *fault.Injector) { c.ras = inj }

// SetOrphanPort installs the sub-scheduler port that receives re-queued
// tasks after a kill.
func (c *Core) SetOrphanPort(p *sim.Port[Work]) { c.orphanPort = p }

// Dead reports whether the core has suffered a hard failure.
func (c *Core) Dead() bool { return c.dead }

// undoEntry is one acked write's pre-image. blob is set for bulk writes
// (DMA chunks), pre for register-width stores.
type undoEntry struct {
	addr  uint64
	size  int
	pre   uint64
	blob  []byte
	order uint64 // memory-controller serve-order stamp
}

type dyingPhase uint8

const (
	phaseDrain dyingPhase = iota
	phaseRollback
)

// dyingState tracks a killed core through drain and rollback.
type dyingState struct {
	phase   dyingPhase
	await   map[uint64]struct{} // write IDs whose acks we still need
	rbAwait map[uint64]struct{} // rollback write IDs awaiting acks
	undo    []undoEntry
	orphans []Work
}

// Kill fails the core hard at cycle now. Tasks that were assigned but not
// finished are orphaned for re-dispatch; their completed memory writes are
// scheduled for rollback once outstanding acks drain.
func (c *Core) Kill(now uint64) {
	if c.dead {
		return
	}
	// The victim may be quiescent (skipped by the engine): re-arm it so the
	// drain/rollback state machine runs, and close out its cycle counters —
	// a dead core stops counting.
	if c.wake != nil {
		c.wake()
	}
	c.padIdleCycles(now)
	c.dead = true
	d := &dyingState{await: map[uint64]struct{}{}}
	c.dying = d

	// Assignments that never reached a thread slot.
	for {
		w, ok := c.workPort.Pop()
		if !ok {
			break
		}
		d.orphans = append(d.orphans, w)
	}

	// Requests still queued for NoC injection never left the core: drop
	// them so their writes are never applied. Responses (remote-SPM
	// service) still go out — the SPM array survives the failure.
	kept := c.outQ[:0]
	for _, p := range c.outQ {
		if p.Kind == noc.KReqRead || p.Kind == noc.KReqWrite {
			if req, ok := p.Payload.(noc.MemReq); ok {
				c.forgetRequest(req.ID)
			}
			continue
		}
		kept = append(kept, p)
	}
	c.outQ = kept

	// Orphan every installed task, fold its undo log into the dying state,
	// and note the writes already on the wire — their acks carry the
	// pre-images rollback needs.
	for _, th := range c.threads {
		if th.state == TIdle {
			continue
		}
		d.orphans = append(d.orphans, th.work)
		d.undo = append(d.undo, th.undo...)
		for _, s := range th.stores {
			d.await[s.id] = struct{}{}
		}
		*th = thread{slot: th.slot, state: TIdle}
	}
	for id, ch := range c.dma.pendIDs {
		if ch.write {
			d.await[id] = struct{}{}
		}
	}

	c.freeSlot = nil
	c.pendLoad = map[uint64]*thread{}
	c.pendStore = map[uint64]*thread{}
	c.pendIFetch = map[uint64]uint64{}
	c.pendDFill = map[uint64]*thread{}
	c.pendPrefetch = map[uint64]*thread{}
	c.loadStart = map[uint64]uint64{}
	c.isegs = map[uint64]*isegState{}
	c.dma = dmaEngine{core: c}
	c.advanceDying(now)
}

// forgetRequest erases all tracking for a request that was dropped before
// it reached the NoC.
func (c *Core) forgetRequest(id uint64) {
	if th, ok := c.pendStore[id]; ok {
		delete(c.pendStore, id)
		for i, s := range th.stores {
			if s.id == id {
				th.stores = append(th.stores[:i], th.stores[i+1:]...)
				break
			}
		}
		return
	}
	delete(c.pendLoad, id)
	delete(c.pendIFetch, id)
	delete(c.pendDFill, id)
	delete(c.pendPrefetch, id)
	delete(c.loadStart, id)
	if _, ok := c.dma.pendIDs[id]; ok {
		delete(c.dma.pendIDs, id)
		c.dma.outstanding--
	}
}

// tickDead is the failed core's cycle: drain outstanding acks, roll the
// orphaned tasks' memory effects back, release the tasks for re-dispatch,
// and keep serving remote-SPM requests.
func (c *Core) tickDead(now uint64) {
	c.drainOutQ()
	for {
		p, ok := c.eject.Pop()
		if !ok {
			break
		}
		c.handled++
		switch p.Kind {
		case noc.KReqRead, noc.KReqWrite:
			c.serveRemoteSPM(now, p)
		case noc.KRespWrite:
			d := c.dying
			if d == nil {
				break
			}
			resp := p.Payload.(noc.MemResp)
			if _, ok := d.await[resp.ID]; ok {
				delete(d.await, resp.ID)
				if resp.Order != 0 {
					d.undo = append(d.undo, undoEntry{
						addr: resp.Addr, size: resp.Size,
						pre: resp.PreImage, blob: resp.Blob, order: resp.Order,
					})
				}
			} else if d.rbAwait != nil {
				delete(d.rbAwait, resp.ID)
			}
		default:
			// Read data for a dead pipeline: discarded.
		}
	}
	c.advanceDying(now)
	c.drainOutQ()
}

// advanceDying moves the drain → rollback → release state machine.
func (c *Core) advanceDying(now uint64) {
	d := c.dying
	if d == nil {
		return
	}
	if d.phase == phaseDrain && len(d.await) == 0 {
		d.phase = phaseRollback
		c.startRollback(now, d)
	}
	if d.phase == phaseRollback && len(d.rbAwait) == 0 {
		c.releaseOrphans(d)
		c.dying = nil
	}
}

// startRollback undoes every DRAM write the orphaned tasks had already
// performed. Pre-images are deduplicated per byte by the controller's
// serve-order stamp (the oldest pre-image is the pre-task value — valid
// because all writes to a byte serialize at its one home controller), then
// coalesced into per-line blob writes, which are MACT-ineligible and so
// reach the controller without re-batching.
func (c *Core) startRollback(now uint64, d *dyingState) {
	if len(d.undo) == 0 {
		return
	}
	type byteUndo struct {
		val   byte
		order uint64
	}
	pre := map[uint64]byteUndo{}
	for _, u := range d.undo {
		for i := 0; i < u.size; i++ {
			var v byte
			if u.blob != nil {
				v = u.blob[i]
			} else {
				v = byte(u.pre >> (8 * uint(i)))
			}
			a := u.addr + uint64(i)
			if e, ok := pre[a]; !ok || u.order < e.order {
				pre[a] = byteUndo{val: v, order: u.order}
			}
		}
	}
	d.undo = nil
	addrs := make([]uint64, 0, len(pre))
	for a := range pre {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	d.rbAwait = map[uint64]struct{}{}
	for i := 0; i < len(addrs); {
		start := addrs[i]
		j := i + 1
		for j < len(addrs) && addrs[j] == addrs[j-1]+1 && addrs[j]/64 == start/64 {
			j++
		}
		blob := make([]byte, j-i)
		for k := i; k < j; k++ {
			blob[k-i] = pre[addrs[k]].val
		}
		id := c.nextReqID()
		d.rbAwait[id] = struct{}{}
		if c.ras != nil {
			c.ras.Stats.RollbackWrites.Add(1)
		}
		req := noc.MemReq{ID: id, Addr: start, Size: len(blob), Blob: blob}
		c.send(noc.NewMemReqPacket(id, c.Node, c.mcFor(start), req, true, false, now))
		i = j
	}
}

// releaseOrphans hands the drained tasks to the sub-scheduler.
func (c *Core) releaseOrphans(d *dyingState) {
	if c.orphanPort == nil {
		d.orphans = nil
		return
	}
	for _, w := range d.orphans {
		c.sendSeq++
		c.orphanPort.Send(c.key, c.sendSeq, w)
	}
	d.orphans = nil
}

// Progress implements sim.ProgressReporter: instructions issued plus
// packets and DMA chunks processed.
func (c *Core) Progress() uint64 { return c.Stats.Issued.Value() + c.handled }

// Health implements sim.HealthReporter: non-empty while the core is waiting
// on memory or draining a failure.
func (c *Core) Health() string {
	if c.dead {
		if d := c.dying; d != nil {
			return fmt.Sprintf("failed, %d drain acks and %d rollback acks outstanding",
				len(d.await), len(d.rbAwait))
		}
		if n := len(c.outQ); n > 0 {
			return fmt.Sprintf("failed, %d packets to flush", n)
		}
		return ""
	}
	waiting := 0
	for _, th := range c.threads {
		switch th.state {
		case TIdle, TReady:
		default:
			waiting++
		}
	}
	pend := len(c.pendLoad) + len(c.pendStore) + len(c.pendIFetch) + len(c.pendDFill) + len(c.pendPrefetch)
	if waiting == 0 && pend == 0 && len(c.outQ) == 0 && c.dma.idle() {
		return ""
	}
	return fmt.Sprintf("%d threads waiting, %d requests outstanding, %d packets queued",
		waiting, pend, len(c.outQ))
}
