package cpu

import (
	"testing"

	"smarco/internal/dram"
	"smarco/internal/isa"
	"smarco/internal/mem"
	"smarco/internal/noc"
	"smarco/internal/sim"
	"smarco/internal/spm"
)

// rig wires N cores and one memory controller on a small ring.
type rig struct {
	eng   *sim.Engine
	cores []*Core
	ctl   *dram.Controller
	store *mem.Sparse
	done  *sim.Port[Completion]
}

func newRig(t testing.TB, nCores int, cfg Config) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(), store: mem.NewSparse()}
	r.done = sim.NewPort[Completion](0)
	ring := noc.MustNewRing("t", nCores+1, noc.DefaultSubRing(), 10_000)
	mcFor := func(addr uint64) noc.NodeID { return noc.MCNode(0) }
	cfg.MemCores = nCores
	for i := 0; i < nCores; i++ {
		inj, ej := ring.Attach(i, noc.CoreNode(i))
		core := MustNew(i, cfg, r.store, inj, ej, r.done, mcFor, uint64(100+i))
		r.cores = append(r.cores, core)
		r.eng.Add(core)
	}
	mcInj, mcEj := ring.Attach(nCores, noc.MCNode(0))
	r.ctl = dram.New(noc.MCNode(0), dram.DDR4(), r.store, mcInj, mcEj, 99)
	r.eng.Add(r.ctl)
	for _, rt := range ring.Routers() {
		r.eng.Add(rt)
	}
	// Register ports against their draining component so deliveries re-arm
	// quiesced owners.
	for i, rt := range ring.Routers() {
		r.eng.AddPortFor(rt, rt.InPorts()...)
		if i < nCores {
			r.eng.AddPortFor(r.cores[i], rt.EjectPort())
		} else {
			r.eng.AddPortFor(r.ctl, rt.EjectPort())
		}
	}
	for _, core := range r.cores {
		r.eng.AddPortFor(core, core.Ports()...)
	}
	// done is drained by the test harness, not a component: unowned.
	r.eng.AddPort(r.done)
	return r
}

// runUntilDone steps until n completions arrive or the budget expires.
func (r *rig) runUntilDone(t testing.TB, n int, budget int) []Completion {
	t.Helper()
	var comps []Completion
	for i := 0; i < budget; i++ {
		r.eng.Step()
		comps = r.done.DrainInto(comps, 0)
		if len(comps) >= n {
			return comps
		}
	}
	t.Fatalf("only %d of %d tasks completed within %d cycles", len(comps), n, budget)
	return nil
}

func assign(r *rig, core int, w Work) {
	r.cores[core].WorkPort().Send(0, uint64(w.TaskID), w)
}

const codeBase = 0x4000_0000

func testCfg() Config {
	c := DefaultConfig()
	c.SharedISeg = true
	return c
}

func TestCoreRunsProgramToCompletion(t *testing.T) {
	prog := isa.MustAssemble("sum", `
		li   t0, 0
		li   t1, 0
	loop:
		add  t1, t1, t0
		addi t0, t0, 1
		li   t2, 11
		blt  t0, t2, loop
		sd   t1, 0(a0)
		halt
	`)
	r := newRig(t, 1, testCfg())
	assign(r, 0, Work{TaskID: 1, Prog: prog, Args: [8]int64{0x9000}, CodeBase: codeBase})
	comps := r.runUntilDone(t, 1, 20_000)
	if comps[0].TaskID != 1 {
		t.Fatalf("completion = %+v", comps[0])
	}
	if got := r.store.ReadUint64(0x9000); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestCoreLoadFromDRAM(t *testing.T) {
	prog := isa.MustAssemble("ldst", `
		ld  t0, 0(a0)
		addi t0, t0, 5
		sd  t0, 8(a0)
		halt
	`)
	r := newRig(t, 1, testCfg())
	r.store.WriteUint64(0x8000, 37)
	assign(r, 0, Work{TaskID: 1, Prog: prog, Args: [8]int64{0x8000}, CodeBase: codeBase})
	r.runUntilDone(t, 1, 20_000)
	if got := r.store.ReadUint64(0x8008); got != 42 {
		t.Fatalf("result = %d, want 42", got)
	}
}

func TestStoreBufferForwarding(t *testing.T) {
	// Store then immediately load the same address: must forward from the
	// store buffer, not read stale memory.
	prog := isa.MustAssemble("fwd", `
		li  t0, 123
		sd  t0, 0(a0)
		ld  t1, 0(a0)
		sd  t1, 8(a0)
		halt
	`)
	r := newRig(t, 1, testCfg())
	assign(r, 0, Work{TaskID: 1, Prog: prog, Args: [8]int64{0x8000}, CodeBase: codeBase})
	r.runUntilDone(t, 1, 20_000)
	if got := r.store.ReadUint64(0x8008); got != 123 {
		t.Fatalf("forwarded value = %d, want 123", got)
	}
	if r.cores[0].Stats.StoreFwd.Value() == 0 {
		t.Fatal("no store-buffer forward recorded")
	}
}

func TestPartialOverlapStallsUntilDrain(t *testing.T) {
	// 8-byte store, 1-byte load inside it is covered (forward); but a
	// 8-byte load overlapping a 1-byte store must stall and then read the
	// merged memory value.
	prog := isa.MustAssemble("overlap", `
		li  t0, -1
		sd  t0, 0(a0)       # covers [0,8)
		li  t1, 0
		sb  t1, 3(a0)       # 1-byte store inside
		ld  t2, 0(a0)       # overlaps both: must drain
		sd  t2, 8(a0)
		halt
	`)
	r := newRig(t, 1, testCfg())
	assign(r, 0, Work{TaskID: 1, Prog: prog, Args: [8]int64{0x8000}, CodeBase: codeBase})
	r.runUntilDone(t, 1, 40_000)
	want := uint64(0xFFFFFFFF00FFFFFF)
	if got := r.store.ReadUint64(0x8008); got != want {
		t.Fatalf("drained value = %#x, want %#x", got, want)
	}
	if r.cores[0].Stats.StoreStall.Value() == 0 {
		t.Fatal("no store stall recorded")
	}
}

func TestLocalSPMAccess(t *testing.T) {
	prog := isa.MustAssemble("spmrw", `
		li  t0, 99
		sd  t0, 0(a0)       # a0 points into local SPM
		ld  t1, 0(a0)
		sd  t1, 0(a1)       # copy to DRAM for checking
		halt
	`)
	r := newRig(t, 1, testCfg())
	spmAddr := spm.AddrOf(0, 128)
	assign(r, 0, Work{TaskID: 1, Prog: prog, Args: [8]int64{int64(spmAddr), 0x8000}, CodeBase: codeBase})
	r.runUntilDone(t, 1, 20_000)
	if got := r.store.ReadUint64(0x8000); got != 99 {
		t.Fatalf("SPM round trip = %d, want 99", got)
	}
	if r.cores[0].Stats.SPMAccesses.Value() < 2 {
		t.Fatal("SPM accesses not recorded")
	}
	if got := r.cores[0].SPM.Read(128, 8); got != 99 {
		t.Fatalf("SPM content = %d", got)
	}
}

func TestRemoteSPMAccess(t *testing.T) {
	prog := isa.MustAssemble("remote", `
		li  t0, 314
		sd  t0, 0(a0)       # a0 points into core 1's SPM
		ld  t1, 0(a0)
		sd  t1, 0(a1)
		halt
	`)
	r := newRig(t, 2, testCfg())
	remote := spm.AddrOf(1, 64)
	assign(r, 0, Work{TaskID: 1, Prog: prog, Args: [8]int64{int64(remote), 0x8000}, CodeBase: codeBase})
	r.runUntilDone(t, 1, 40_000)
	if got := r.store.ReadUint64(0x8000); got != 314 {
		t.Fatalf("remote SPM round trip = %d, want 314", got)
	}
	if got := r.cores[1].SPM.Read(64, 8); got != 314 {
		t.Fatalf("remote SPM content = %d", got)
	}
	if r.cores[0].Stats.RemoteSPM.Value() == 0 {
		t.Fatal("remote SPM accesses not recorded")
	}
}

// dmaProgram programs the SPM DMA registers and spins on completion.
func dmaProgram() *isa.Program {
	return isa.MustAssemble("dma", `
		# a0 = ctrl base, a1 = src, a2 = dst, a3 = len
		sd  a1, 0(a0)
		sd  a2, 8(a0)
		sd  a3, 16(a0)
		li  t0, 1
		sd  t0, 24(a0)
	poll:
		ld  t1, 24(a0)
		bnez t1, poll
		halt
	`)
}

func TestDMADramToSPM(t *testing.T) {
	r := newRig(t, 1, testCfg())
	for i := 0; i < 32; i++ {
		r.store.WriteUint64(0x8000+uint64(i)*8, uint64(i)*3)
	}
	ctrl := spm.CtrlBase(0)
	assign(r, 0, Work{TaskID: 1, Prog: dmaProgram(), CodeBase: codeBase,
		Args: [8]int64{int64(ctrl), 0x8000, int64(spm.AddrOf(0, 0)), 256}})
	r.runUntilDone(t, 1, 50_000)
	for i := 0; i < 32; i++ {
		if got := r.cores[0].SPM.Read(uint64(i)*8, 8); got != uint64(i)*3 {
			t.Fatalf("SPM[%d] = %d, want %d", i, got, i*3)
		}
	}
}

func TestDMASPMToDram(t *testing.T) {
	r := newRig(t, 1, testCfg())
	for i := 0; i < 16; i++ {
		r.cores[0].SPM.Write(uint64(i)*8, 8, uint64(i)+100)
	}
	ctrl := spm.CtrlBase(0)
	assign(r, 0, Work{TaskID: 1, Prog: dmaProgram(), CodeBase: codeBase,
		Args: [8]int64{int64(ctrl), int64(spm.AddrOf(0, 0)), 0xA000, 128}})
	r.runUntilDone(t, 1, 50_000)
	for i := 0; i < 16; i++ {
		if got := r.store.ReadUint64(0xA000 + uint64(i)*8); got != uint64(i)+100 {
			t.Fatalf("DRAM[%d] = %d, want %d", i, got, i+100)
		}
	}
}

func TestDMASPMToRemoteSPM(t *testing.T) {
	r := newRig(t, 2, testCfg())
	for i := 0; i < 8; i++ {
		r.cores[0].SPM.Write(uint64(i)*8, 8, uint64(i)+7)
	}
	ctrl := spm.CtrlBase(0)
	assign(r, 0, Work{TaskID: 1, Prog: dmaProgram(), CodeBase: codeBase,
		Args: [8]int64{int64(ctrl), int64(spm.AddrOf(0, 0)), int64(spm.AddrOf(1, 512)), 64}})
	r.runUntilDone(t, 1, 50_000)
	for i := 0; i < 8; i++ {
		if got := r.cores[1].SPM.Read(512+uint64(i)*8, 8); got != uint64(i)+7 {
			t.Fatalf("remote SPM[%d] = %d, want %d", i, got, i+7)
		}
	}
}

// memHeavy builds a pointer-chase-free but memory-heavy loop: each
// iteration loads from DRAM (always a miss in direct mode).
func memHeavy() *isa.Program {
	return isa.MustAssemble("memheavy", `
		li  t0, 0
		li  t2, 0
	loop:
		slli t1, t0, 3
		add  t1, t1, a0
		ld   t3, 0(t1)
		add  t2, t2, t3
		addi t0, t0, 1
		blt  t0, a1, loop
		sd   t2, 0(a2)
		halt
	`)
}

// TestInPairThreadsHideLatency is Fig. 17's mechanism: two threads on one
// lane finish two memory-bound tasks in much less than twice the time of
// one, because the friend thread runs during the other's misses.
func TestInPairThreadsHideLatency(t *testing.T) {
	mk := func() (*rig, Work, Work) {
		r := newRig(t, 1, testCfg())
		// The arrays are offset by an odd number of 64-byte lines so the
		// two threads' sequential accesses never collide on a DRAM bank.
		for i := 0; i < 64; i++ {
			r.store.WriteUint64(0x8000+uint64(i)*8, 1)
			r.store.WriteUint64(0xA040+uint64(i)*8, 1)
		}
		w1 := Work{TaskID: 1, Prog: memHeavy(), CodeBase: codeBase,
			Args: [8]int64{0x8000, 64, 0x9000}}
		w2 := Work{TaskID: 2, Prog: memHeavy(), CodeBase: codeBase,
			Args: [8]int64{0xA040, 64, 0x9008}}
		return r, w1, w2
	}

	// One thread alone.
	r1, w1, _ := mk()
	assign(r1, 0, w1)
	r1.runUntilDone(t, 1, 100_000)
	solo := r1.eng.Now()

	// Two in-pair threads (same lane: slots 0 and 1).
	r2, w3, w4 := mk()
	assign(r2, 0, w3)
	assign(r2, 0, w4)
	r2.runUntilDone(t, 2, 200_000)
	pair := r2.eng.Now()

	if float64(pair) > 1.5*float64(solo) {
		t.Fatalf("in-pair threads did not overlap: solo=%d, pair=%d", solo, pair)
	}
}

func TestIPCScalesWithThreads(t *testing.T) {
	// Compute-bound kernel: IPC should scale with threads up to the lane
	// count (4), the Fig. 17 left region.
	compute := isa.MustAssemble("alu", `
		li  t0, 0
		li  t1, 800
	loop:
		addi t0, t0, 1
		xor  t2, t0, t1
		and  t3, t2, t0
		blt  t0, t1, loop
		halt
	`)
	ipcFor := func(nThreads int) float64 {
		r := newRig(t, 1, testCfg())
		for i := 0; i < nThreads; i++ {
			assign(r, 0, Work{TaskID: i + 1, Prog: compute, CodeBase: codeBase})
		}
		r.runUntilDone(t, nThreads, 200_000)
		return r.cores[0].Stats.IPC()
	}
	one := ipcFor(1)
	four := ipcFor(4)
	if four < 2.5*one {
		t.Fatalf("IPC did not scale: 1 thread %.2f, 4 threads %.2f", one, four)
	}
}

func TestHaltFreesSlotForNextTask(t *testing.T) {
	tiny := isa.MustAssemble("tiny", "sd a0, 0(a1)\nhalt")
	r := newRig(t, 1, testCfg())
	// 10 tasks on a core with 8 slots: reuse must happen.
	for i := 0; i < 10; i++ {
		assign(r, 0, Work{TaskID: i + 1, Prog: tiny, CodeBase: codeBase,
			Args: [8]int64{int64(i), int64(0x8000 + i*8)}})
	}
	r.runUntilDone(t, 10, 100_000)
	for i := 0; i < 10; i++ {
		if got := r.store.ReadUint64(uint64(0x8000 + i*8)); got != uint64(i) {
			t.Fatalf("task %d output = %d", i, got)
		}
	}
	if r.cores[0].FreeSlots() != r.cores[0].ThreadSlots() {
		t.Fatal("slots not all freed")
	}
}

func TestICacheModeFetchMisses(t *testing.T) {
	cfg := testCfg()
	cfg.SharedISeg = false
	prog := isa.MustAssemble("loop", `
		li t0, 0
		li t1, 50
	l:
		addi t0, t0, 1
		blt  t0, t1, l
		halt
	`)
	r := newRig(t, 1, cfg)
	assign(r, 0, Work{TaskID: 1, Prog: prog, CodeBase: codeBase})
	r.runUntilDone(t, 1, 50_000)
	if r.cores[0].Stats.IFMisses.Value() == 0 {
		t.Fatal("expected cold I-cache misses")
	}
	// The 6-instruction loop fits one line: exactly one miss expected.
	if got := r.cores[0].Stats.IFMisses.Value(); got > 2 {
		t.Fatalf("too many I-misses: %d", got)
	}
}

func TestCachedModeReusesLines(t *testing.T) {
	cfg := testCfg()
	cfg.Cached = true
	r := newRig(t, 1, cfg)
	for i := 0; i < 64; i++ {
		r.store.WriteUint64(0x8000+uint64(i)*8, 2)
	}
	assign(r, 0, Work{TaskID: 1, Prog: memHeavy(), CodeBase: codeBase,
		Args: [8]int64{0x8000, 64, 0x9000}})
	r.runUntilDone(t, 1, 100_000)
	if got := r.store.ReadUint64(0x9000); got != 128 {
		t.Fatalf("sum = %d, want 128", got)
	}
	c := r.cores[0]
	// 64 sequential 8-byte loads over 8 lines: ~8 misses.
	if c.Stats.DMisses.Value() > 16 {
		t.Fatalf("cached mode missed %d times for 8 lines", c.Stats.DMisses.Value())
	}
}

func TestIdleReflectsState(t *testing.T) {
	r := newRig(t, 1, testCfg())
	if !r.cores[0].Idle() {
		t.Fatal("fresh core should be idle")
	}
	assign(r, 0, Work{TaskID: 1, Prog: isa.MustAssemble("h", "halt"), CodeBase: codeBase})
	r.runUntilDone(t, 1, 10_000)
	if !r.cores[0].Idle() {
		t.Fatal("core should be idle after completion")
	}
}

// TestSequentialPrefetcher (§7 future work): streaming loads should hit the
// prefetch line buffer, cutting runtime versus the same run without it,
// with identical results.
func TestSequentialPrefetcher(t *testing.T) {
	run := func(enable bool) (uint64, uint64, uint64) {
		cfg := testCfg()
		cfg.Prefetch = enable
		r := newRig(t, 1, cfg)
		for i := 0; i < 256; i++ {
			r.store.WriteUint64(0x8000+uint64(i)*8, 2)
		}
		assign(r, 0, Work{TaskID: 1, Prog: memHeavy(), CodeBase: codeBase,
			Args: [8]int64{0x8000, 256, 0x9000}})
		r.runUntilDone(t, 1, 400_000)
		return r.eng.Now(), r.store.ReadUint64(0x9000), r.cores[0].Stats.PrefetchHits.Value()
	}
	offCycles, offSum, _ := run(false)
	onCycles, onSum, hits := run(true)
	if offSum != 512 || onSum != 512 {
		t.Fatalf("sums: off=%d on=%d, want 512", offSum, onSum)
	}
	if hits == 0 {
		t.Fatal("prefetcher never hit")
	}
	if onCycles >= offCycles {
		t.Fatalf("prefetch did not help: %d vs %d cycles", onCycles, offCycles)
	}
}

// TestPrefetcherInvalidatedByOwnStore: a store into the prefetched line
// must not let a later load read stale buffered data.
func TestPrefetcherInvalidatedByOwnStore(t *testing.T) {
	prog := isa.MustAssemble("pfinv", `
		# Stream enough loads to arm the prefetcher and pull in the next
		# line, then store to that next line and re-load it.
		li   t0, 0
	warm:
		slli t1, t0, 3
		add  t1, t1, a0
		ld   t2, 0(t1)
		addi t0, t0, 1
		li   t3, 8
		blt  t0, t3, warm
		# The prefetcher should now hold the line at a0+64.
		li   t4, 777
		sd   t4, 64(a0)      # write into the prefetched line
	drainwait:
		ld   t5, 64(a0)      # must see 777, not the stale prefetch
		sd   t5, 0(a1)
		halt
	`)
	cfg := testCfg()
	cfg.Prefetch = true
	r := newRig(t, 1, cfg)
	assign(r, 0, Work{TaskID: 1, Prog: prog, CodeBase: codeBase,
		Args: [8]int64{0x8000, 0x9000}})
	r.runUntilDone(t, 1, 100_000)
	if got := r.store.ReadUint64(0x9000); got != 777 {
		t.Fatalf("read stale prefetched data: %d, want 777", got)
	}
}
