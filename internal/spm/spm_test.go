package spm

import (
	"testing"
	"testing/quick"
)

func TestAddressMapRoundTrip(t *testing.T) {
	if err := quick.Check(func(core uint8, off uint32) bool {
		c := int(core)
		o := uint64(off) % Stride
		addr := AddrOf(c, o)
		return IsSPMAddr(addr, 256) && CoreOf(addr) == c && OffsetOf(addr) == o
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsSPMAddrBounds(t *testing.T) {
	if IsSPMAddr(GlobalBase-1, 256) {
		t.Fatal("address below base classified as SPM")
	}
	if !IsSPMAddr(GlobalBase, 256) {
		t.Fatal("base address not classified as SPM")
	}
	if IsSPMAddr(GlobalBase+256*Stride, 256) {
		t.Fatal("address past last SPM classified as SPM")
	}
	if IsSPMAddr(GlobalBase+16*Stride, 16) {
		t.Fatal("16-core chip must not claim core 16's window")
	}
}

func TestDataReadWrite(t *testing.T) {
	s := New(3)
	s.Write(100, 8, 0xDEADBEEFCAFEF00D)
	if got := s.Read(100, 8); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("read = %#x", got)
	}
	if got := s.Read(104, 4); got != 0xDEADBEEF {
		t.Fatalf("partial read = %#x", got)
	}
}

func TestBytesHelpers(t *testing.T) {
	s := New(0)
	s.WriteBytes(10, []byte("scratch"))
	if string(s.ReadBytes(10, 7)) != "scratch" {
		t.Fatal("bytes round trip failed")
	}
}

func TestCtrlRegistersSeparateFromData(t *testing.T) {
	s := New(0)
	// Last data byte and first register byte are neighbours.
	s.Write(DataBytes-1, 1, 0x55)
	s.Write(DataBytes+RegDMASrc, 8, 0x1234)
	if s.Read(DataBytes-1, 1) != 0x55 {
		t.Fatal("register write corrupted data")
	}
	if s.Read(DataBytes+RegDMASrc, 8) != 0x1234 {
		t.Fatal("register readback failed")
	}
}

func TestDMAKickProtocol(t *testing.T) {
	s := New(0)
	if _, kicked := s.TakeDMAKick(); kicked {
		t.Fatal("kick without ctl write")
	}
	s.Write(DataBytes+RegDMASrc, 8, 0x1000)
	s.Write(DataBytes+RegDMADst, 8, AddrOf(0, 0))
	s.Write(DataBytes+RegDMALen, 8, 256)
	s.Write(DataBytes+RegDMACtl, 8, 1)
	req, kicked := s.TakeDMAKick()
	if !kicked {
		t.Fatal("kick not detected")
	}
	if req.Src != 0x1000 || req.Dst != AddrOf(0, 0) || req.Len != 256 {
		t.Fatalf("req = %+v", req)
	}
	if !s.DMABusy() {
		t.Fatal("engine should be busy after kick")
	}
	if _, again := s.TakeDMAKick(); again {
		t.Fatal("kick must be consumed")
	}
	s.CompleteDMA()
	if s.DMABusy() {
		t.Fatal("engine still busy after completion")
	}
	if got := s.Read(DataBytes+RegDMADoneCt, 8); got != 1 {
		t.Fatalf("done count = %d", got)
	}
}

func TestCtrlBase(t *testing.T) {
	if CtrlBase(2) != AddrOf(2, DataBytes) {
		t.Fatal("CtrlBase mismatch")
	}
	if CtrlBytes != 256 {
		t.Fatal("paper specifies a 256-byte control window")
	}
}
