// Package spm models the per-core ScratchPad Memory (§3.5.1): a 128 KB
// programmer-managed store with unified global addressing, shareable across
// a sub-ring, whose top 256 bytes are DMA control registers. Timing and the
// DMA engine live with the core (internal/cpu); this package owns storage,
// the global SPM address map, and register decoding.
package spm

import (
	"fmt"

	"smarco/internal/mem"
)

// GlobalBase is where SPM space begins in the unified address map. Every
// core's SPM occupies a Stride-sized window: core i's SPM is at
// [GlobalBase + i*Stride, GlobalBase + i*Stride + Size).
const GlobalBase uint64 = 0xF000_0000

// Size is each core's SPM capacity (128 KB per §3.1).
const Size = 128 << 10

// Stride is the address-map spacing between consecutive cores' SPMs.
const Stride = Size

// CtrlBytes is the register window at the top of each SPM (§3.5.1: "SPMs
// spare top 256 bytes space to act as control registers").
const CtrlBytes = 256

// DataBytes is the usable data capacity below the control registers.
const DataBytes = Size - CtrlBytes

// Control register offsets within the 256-byte window.
const (
	RegDMASrc    = 0  // 8-byte DMA source address (global)
	RegDMADst    = 8  // 8-byte DMA destination address (global)
	RegDMALen    = 16 // 8-byte transfer length in bytes
	RegDMACtl    = 24 // write 1 to start; reads 1 while busy, 0 when idle
	RegDMADoneCt = 32 // count of completed transfers (read-only)
)

// HitLatency is the SPM access latency in cycles ("faster access speed ...
// more predictable than caches").
const HitLatency = 2

// IsSPMAddr reports whether addr falls in global SPM space for a chip with
// cores cores.
func IsSPMAddr(addr uint64, cores int) bool {
	return addr >= GlobalBase && addr < GlobalBase+uint64(cores)*Stride
}

// CoreOf returns which core's SPM contains addr.
func CoreOf(addr uint64) int {
	return int((addr - GlobalBase) / Stride)
}

// OffsetOf returns addr's offset within its SPM window.
func OffsetOf(addr uint64) uint64 {
	return (addr - GlobalBase) % Stride
}

// AddrOf returns the global address of offset off in core's SPM.
func AddrOf(core int, off uint64) uint64 {
	return GlobalBase + uint64(core)*Stride + off
}

// CtrlBase returns the global address of core's control-register window.
func CtrlBase(core int) uint64 {
	return AddrOf(core, DataBytes)
}

// SPM is one core's scratchpad: flat data plus control registers.
type SPM struct {
	Core int
	data *mem.Flat
	regs [CtrlBytes]byte
}

// New builds core's SPM.
func New(core int) *SPM {
	return &SPM{Core: core, data: mem.NewFlat(DataBytes)}
}

// Read returns size bytes at window offset off (little-endian). Reads of the
// control window return register contents.
func (s *SPM) Read(off uint64, size int) uint64 {
	if off >= DataBytes {
		return s.readReg(off-DataBytes, size)
	}
	return s.data.Read(off, size)
}

// Write stores size bytes at window offset off. Writes to the control
// window update registers; a write of 1 to RegDMACtl is detected by the
// core's DMA engine via TakeDMAKick.
func (s *SPM) Write(off uint64, size int, val uint64) {
	if off >= DataBytes {
		s.writeReg(off-DataBytes, size, val)
		return
	}
	s.data.Write(off, size, val)
}

// ReadBytes copies n data bytes from off (for DMA chunking).
func (s *SPM) ReadBytes(off uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(s.data.Read(off+uint64(i), 1))
	}
	return out
}

// WriteBytes stores b at data offset off.
func (s *SPM) WriteBytes(off uint64, b []byte) {
	for i, v := range b {
		s.data.Write(off+uint64(i), 1, uint64(v))
	}
}

func (s *SPM) readReg(off uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		a := off + uint64(i)
		if a < CtrlBytes {
			v |= uint64(s.regs[a]) << (8 * uint(i))
		}
	}
	return v
}

func (s *SPM) writeReg(off uint64, size int, val uint64) {
	for i := 0; i < size; i++ {
		a := off + uint64(i)
		if a < CtrlBytes {
			s.regs[a] = byte(val >> (8 * uint(i)))
		}
	}
}

// DMARequest describes a programmed transfer read from the registers.
type DMARequest struct {
	Src, Dst uint64 // global addresses
	Len      uint64
}

// TakeDMAKick checks whether software started a DMA (wrote 1 to RegDMACtl).
// If so it consumes the kick, marks the engine busy, and returns the
// programmed transfer.
func (s *SPM) TakeDMAKick() (DMARequest, bool) {
	if s.readReg(RegDMACtl, 8) != 1 {
		return DMARequest{}, false
	}
	req := DMARequest{
		Src: s.readReg(RegDMASrc, 8),
		Dst: s.readReg(RegDMADst, 8),
		Len: s.readReg(RegDMALen, 8),
	}
	s.writeReg(RegDMACtl, 8, 2) // busy
	return req, true
}

// DMABusy reports whether a transfer is in progress.
func (s *SPM) DMABusy() bool { return s.readReg(RegDMACtl, 8) == 2 }

// CompleteDMA marks the current transfer done and bumps the completion
// counter.
func (s *SPM) CompleteDMA() {
	s.writeReg(RegDMACtl, 8, 0)
	s.writeReg(RegDMADoneCt, 8, s.readReg(RegDMADoneCt, 8)+1)
}

// String identifies the SPM for diagnostics.
func (s *SPM) String() string { return fmt.Sprintf("spm[core%d]", s.Core) }
