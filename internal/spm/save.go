package spm

import "smarco/internal/snapshot"

// SaveState implements sim.Saver: the data array plus the control-register
// window (which holds in-progress DMA programming and the completion
// counter).
func (s *SPM) SaveState(e *snapshot.Encoder) {
	s.data.Save(e)
	e.Blob(s.regs[:])
}

// RestoreState implements sim.Restorer.
func (s *SPM) RestoreState(d *snapshot.Decoder) {
	s.data.Restore(d)
	d.BlobInto(s.regs[:])
}
