// Checkpoint serialization for the Memory Access Collection Table: every
// line (tag, bitmap, data, deadline, pending requesters) plus the in-flight
// batch map, saved in sorted key order so identical state always encodes to
// identical bytes.
package mact

import (
	"sort"

	"smarco/internal/noc"
	"smarco/internal/snapshot"
)

func savePend(e *snapshot.Encoder, p pend) {
	e.U64(p.id)
	e.U32(uint32(p.src))
	e.U64(p.addr)
	e.Int(p.size)
	e.Int(p.thread)
	e.Bool(p.priority)
}

func restorePend(d *snapshot.Decoder) pend {
	var p pend
	p.id = d.U64()
	p.src = noc.NodeID(d.U32())
	p.addr = d.U64()
	p.size = d.Int()
	p.thread = d.Int()
	p.priority = d.Bool()
	return p
}

func savePends(e *snapshot.Encoder, ps []pend) {
	e.U32(uint32(len(ps)))
	for _, p := range ps {
		savePend(e, p)
	}
}

func restorePends(d *snapshot.Decoder) []pend {
	n := int(d.U32())
	if n == 0 {
		return nil
	}
	ps := make([]pend, 0, n)
	for i := 0; i < n; i++ {
		ps = append(ps, restorePend(d))
	}
	return ps
}

// SaveState implements sim.Saver.
func (t *Table) SaveState(e *snapshot.Encoder) {
	e.U32(uint32(len(t.lines)))
	for i := range t.lines {
		l := &t.lines[i]
		e.Bool(l.valid)
		e.Bool(l.write)
		e.U64(l.lineAddr)
		e.U64(l.bitmap)
		e.Blob(l.data[:])
		e.U64(l.deadline)
		e.U64(l.created)
		savePends(e, l.pend)
	}
	e.U64(t.seq)
	keys := make([]batchKey, 0, len(t.inflight))
	for k := range t.inflight {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.lineAddr != b.lineAddr {
			return a.lineAddr < b.lineAddr
		}
		if a.write != b.write {
			return !a.write
		}
		return a.id < b.id
	})
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.U64(k.lineAddr)
		e.Bool(k.write)
		e.U64(k.id)
		savePends(e, t.inflight[k])
	}
	t.Stats.Collected.Save(e)
	t.Stats.Forwards.Save(e)
	t.Stats.Batches.Save(e)
	t.Stats.FullFlush.Save(e)
	t.Stats.DeadlineFlush.Save(e)
	t.Stats.CapacityFlush.Save(e)
	t.Stats.HazardFlush.Save(e)
	t.Stats.Bypassed.Save(e)
	t.Stats.Scattered.Save(e)
	t.Stats.OccupancySum.Save(e)
	t.Stats.OccupancyTicks.Save(e)
	t.Stats.BatchFill.Save(e)
	t.Stats.LineAge.Save(e)
}

// RestoreState implements sim.Restorer.
func (t *Table) RestoreState(d *snapshot.Decoder) {
	n := int(d.U32())
	if n != len(t.lines) {
		d.Fail("mact: snapshot has %d lines, table has %d", n, len(t.lines))
		return
	}
	for i := range t.lines {
		l := &t.lines[i]
		l.valid = d.Bool()
		l.write = d.Bool()
		l.lineAddr = d.U64()
		l.bitmap = d.U64()
		d.BlobInto(l.data[:])
		l.deadline = d.U64()
		l.created = d.U64()
		l.pend = restorePends(d)
	}
	t.seq = d.U64()
	n = int(d.U32())
	if t.inflight == nil && n > 0 {
		t.inflight = make(map[batchKey][]pend, n)
	}
	for k := range t.inflight {
		delete(t.inflight, k)
	}
	for i := 0; i < n; i++ {
		var k batchKey
		k.lineAddr = d.U64()
		k.write = d.Bool()
		k.id = d.U64()
		t.inflight[k] = restorePends(d)
	}
	t.Stats.Collected.Restore(d)
	t.Stats.Forwards.Restore(d)
	t.Stats.Batches.Restore(d)
	t.Stats.FullFlush.Restore(d)
	t.Stats.DeadlineFlush.Restore(d)
	t.Stats.CapacityFlush.Restore(d)
	t.Stats.HazardFlush.Restore(d)
	t.Stats.Bypassed.Restore(d)
	t.Stats.Scattered.Restore(d)
	t.Stats.OccupancySum.Restore(d)
	t.Stats.OccupancyTicks.Restore(d)
	t.Stats.BatchFill.Restore(d)
	t.Stats.LineAge.Restore(d)
}
