// Package mact implements the Memory Access Collection Table (§3.4): a
// per-sub-ring structure that merges small, discrete memory accesses from
// adjacent cores into batched line-granularity requests. Each line holds a
// type (read/write), a 64-byte-aligned base address (Tag), a byte bitmap
// (Vector), and a deadline timer (Threshold). A line is flushed to memory
// when its bitmap fills or its deadline expires, preserving the timeliness
// bound the paper requires.
//
// The table also performs store-to-load forwarding: a read fully covered by
// a pending write line is answered immediately, keeping same-line
// read-after-write ordering without a round trip.
package mact

import (
	"fmt"

	"smarco/internal/noc"
	"smarco/internal/sim"
	"smarco/internal/stats"
)

// Config sizes a MACT.
type Config struct {
	// Lines is the table capacity.
	Lines int
	// Threshold is the deadline, in cycles, after which a collected line
	// must be sent to memory (the paper finds 16 best; Fig. 19).
	Threshold uint64
	// Enabled turns collection off entirely when false (requests pass
	// through untouched) — the "conventional" baseline of Fig. 20.
	Enabled bool
}

// Default is the paper's operating point.
func Default() Config { return Config{Lines: 64, Threshold: 16, Enabled: true} }

// Stats counts MACT activity.
type Stats struct {
	Collected      stats.Counter // individual accesses absorbed
	Forwards       stats.Counter // reads answered from pending write lines
	Batches        stats.Counter // batch packets emitted
	FullFlush      stats.Counter // lines flushed because the bitmap filled
	DeadlineFlush  stats.Counter // lines flushed by the threshold timer
	CapacityFlush  stats.Counter // lines flushed to make room
	HazardFlush    stats.Counter // write lines flushed by overlapping reads
	Bypassed       stats.Counter // requests not eligible for collection
	Scattered      stats.Counter // individual responses produced
	OccupancySum   stats.Counter // sum of live lines per Tick (for mean occupancy)
	OccupancyTicks stats.Counter
	// BatchFill and LineAge are bounded streaming histograms: accesses
	// merged into each flushed batch (collection efficiency) and cycles a
	// line lived before flushing (latency cost of batching).
	BatchFill stats.StreamHist
	LineAge   stats.StreamHist
}

type pend struct {
	id       uint64
	src      noc.NodeID
	addr     uint64
	size     int
	thread   int
	priority bool
}

type line struct {
	valid    bool
	write    bool
	lineAddr uint64
	bitmap   uint64
	data     [64]byte
	deadline uint64
	created  uint64
	pend     []pend
}

// Table is one MACT instance (one per sub-ring hub).
type Table struct {
	cfg      Config
	node     noc.NodeID // the hub hosting this table (source of batches)
	lines    []line
	seq      uint64
	inflight map[batchKey][]pend // emitted batches awaiting responses
	Stats    Stats
	trace    sim.TraceFn // nil unless a trace is wired in
}

// SetTracer installs a domain-event tracer; flushes emit "mact" events.
func (t *Table) SetTracer(fn sim.TraceFn) { t.trace = fn }

// New builds a table hosted at node.
func New(node noc.NodeID, cfg Config) *Table {
	return &Table{cfg: cfg, node: node, lines: make([]line, cfg.Lines)}
}

// Eligible reports whether the table would consider absorbing p: an
// enabled table, a plain small read/write that does not cross a line
// boundary, and not marked real-time priority (those bypass per §3.4).
func (t *Table) Eligible(p *noc.Packet) bool {
	if !t.cfg.Enabled || p.Priority {
		return false
	}
	if p.Kind != noc.KReqRead && p.Kind != noc.KReqWrite {
		return false
	}
	req, ok := p.Payload.(noc.MemReq)
	if !ok || req.Size > 8 || req.IFetch {
		return false
	}
	// DMA chunks (blob-carrying bulk transfers) are not the discrete
	// small accesses the table exists for.
	if req.Blob != nil {
		return false
	}
	return (req.Addr&63)+uint64(req.Size) <= 64
}

// Offer presents a request to the table. It returns the packets the table
// wants transmitted right now (immediate forwards back toward the core, or
// hazard/capacity batch flushes toward memory, in that order) and whether
// the request was absorbed. If absorbed is false the caller forwards the
// original packet itself — after any returned flushes, which preserves
// same-line write→read ordering at the memory controller.
func (t *Table) Offer(p *noc.Packet, now uint64, mcFor func(addr uint64) noc.NodeID) (out []*noc.Packet, absorbed bool) {
	if !t.Eligible(p) {
		t.Stats.Bypassed.Inc()
		return nil, false
	}
	req := p.Payload.(noc.MemReq)
	lineAddr := req.Addr &^ 63
	off := req.Addr & 63
	mask := byteMask(off, req.Size)

	if p.Kind == noc.KReqRead {
		// Store-to-load forwarding from a pending write line.
		if wl := t.find(lineAddr, true); wl != nil {
			if wl.bitmap&mask == mask {
				t.Stats.Forwards.Inc()
				var data uint64
				for i := 0; i < req.Size; i++ {
					data |= uint64(wl.data[off+uint64(i)]) << (8 * uint(i))
				}
				resp := noc.MemResp{ID: req.ID, Addr: req.Addr, Size: req.Size, Data: data, Thread: req.Thread}
				return []*noc.Packet{noc.NewMemRespPacket(req.ID, t.node, p.Src, resp, false, now)}, true
			}
			if wl.bitmap&mask != 0 {
				// Partial overlap: flush the write line now and let the
				// read go to memory behind it.
				t.Stats.HazardFlush.Inc()
				out = append(out, t.flush(wl, now, mcFor))
				return out, false
			}
		}
		l, flushPkt := t.allocOrFind(lineAddr, false, now, mcFor)
		if flushPkt != nil {
			out = append(out, flushPkt)
		}
		l.bitmap |= mask
		l.pend = append(l.pend, pend{id: req.ID, src: p.Src, addr: req.Addr, size: req.Size, thread: req.Thread})
		t.Stats.Collected.Inc()
		if l.bitmap == ^uint64(0) {
			t.Stats.FullFlush.Inc()
			out = append(out, t.flush(l, now, mcFor))
		}
		return out, true
	}

	// Write.
	l, flushPkt := t.allocOrFind(lineAddr, true, now, mcFor)
	if flushPkt != nil {
		out = append(out, flushPkt)
	}
	l.bitmap |= mask
	for i := 0; i < req.Size; i++ {
		l.data[off+uint64(i)] = byte(req.Data >> (8 * uint(i)))
	}
	l.pend = append(l.pend, pend{id: req.ID, src: p.Src, addr: req.Addr, size: req.Size, thread: req.Thread})
	t.Stats.Collected.Inc()
	if l.bitmap == ^uint64(0) {
		t.Stats.FullFlush.Inc()
		out = append(out, t.flush(l, now, mcFor))
	}
	return out, true
}

// Expire returns batch packets for every line whose deadline has passed.
// Call once per cycle.
func (t *Table) Expire(now uint64, mcFor func(addr uint64) noc.NodeID) []*noc.Packet {
	var out []*noc.Packet
	live := uint64(0)
	for i := range t.lines {
		l := &t.lines[i]
		if !l.valid {
			continue
		}
		live++
		if now >= l.deadline {
			t.Stats.DeadlineFlush.Inc()
			out = append(out, t.flush(l, now, mcFor))
		}
	}
	t.Stats.OccupancySum.Add(live)
	t.Stats.OccupancyTicks.Inc()
	return out
}

// OnBatchResp scatters a batch response into the individual responses owed
// to each collected requester.
func (t *Table) OnBatchResp(p *noc.Packet, now uint64) []*noc.Packet {
	resp, ok := p.Payload.(noc.BatchResp)
	if !ok {
		return nil
	}
	key := batchKey{lineAddr: resp.LineAddr, write: resp.Write, id: resp.ID}
	pends := t.inflight[key]
	delete(t.inflight, key)
	out := make([]*noc.Packet, 0, len(pends))
	for _, pe := range pends {
		r := noc.MemResp{ID: pe.id, Addr: pe.addr, Size: pe.size, Thread: pe.thread, Write: resp.Write}
		off := pe.addr & 63
		if !resp.Write {
			for i := 0; i < pe.size; i++ {
				r.Data |= uint64(resp.Data[off+uint64(i)]) << (8 * uint(i))
			}
		} else if resp.Order != 0 {
			// Under RAS the batch response carries the pre-image of the
			// dirty bytes; reconstruct this store's slice of it so the
			// core's undo log sees an ordinary write ack.
			r.Order = resp.Order
			for i := 0; i < pe.size; i++ {
				r.PreImage |= uint64(resp.Data[off+uint64(i)]) << (8 * uint(i))
			}
		}
		out = append(out, noc.NewMemRespPacket(pe.id, t.node, pe.src, r, false, now))
		t.Stats.Scattered.Inc()
	}
	return out
}

type batchKey struct {
	lineAddr uint64
	write    bool
	id       uint64
}

func (t *Table) find(lineAddr uint64, write bool) *line {
	for i := range t.lines {
		l := &t.lines[i]
		if l.valid && l.write == write && l.lineAddr == lineAddr {
			return l
		}
	}
	return nil
}

// allocOrFind returns the line for (lineAddr, write), evicting the oldest
// line if the table is full (returning its flush packet).
func (t *Table) allocOrFind(lineAddr uint64, write bool, now uint64, mcFor func(addr uint64) noc.NodeID) (*line, *noc.Packet) {
	if l := t.find(lineAddr, write); l != nil {
		return l, nil
	}
	var free *line
	var oldest *line
	for i := range t.lines {
		l := &t.lines[i]
		if !l.valid {
			if free == nil {
				free = l
			}
			continue
		}
		if oldest == nil || l.created < oldest.created {
			oldest = l
		}
	}
	var flushPkt *noc.Packet
	if free == nil {
		t.Stats.CapacityFlush.Inc()
		flushPkt = t.flush(oldest, now, mcFor)
		free = oldest
	}
	*free = line{
		valid:    true,
		write:    write,
		lineAddr: lineAddr,
		deadline: now + t.cfg.Threshold,
		created:  now,
	}
	return free, flushPkt
}

// flush converts a line into its batch packet and retires it, remembering
// the pending requesters for response scattering.
func (t *Table) flush(l *line, now uint64, mcFor func(addr uint64) noc.NodeID) *noc.Packet {
	t.seq++
	t.Stats.Batches.Inc()
	t.Stats.BatchFill.Observe(uint64(len(l.pend)))
	t.Stats.LineAge.Observe(now - l.created)
	if t.trace != nil {
		t.trace("mact", fmt.Sprintf("flush line=%#x n=%d", l.lineAddr, len(l.pend)), now)
	}
	req := noc.BatchReq{
		ID:       t.seq,
		LineAddr: l.lineAddr,
		Bitmap:   l.bitmap,
		Data:     l.data,
		Write:    l.write,
	}
	if t.inflight == nil {
		t.inflight = make(map[batchKey][]pend)
	}
	t.inflight[batchKey{lineAddr: l.lineAddr, write: l.write, id: t.seq}] = l.pend
	pkt := noc.NewBatchPacket(t.seq, t.node, mcFor(l.lineAddr), req, now)
	l.valid = false
	l.pend = nil
	return pkt
}

// Live returns the number of valid lines.
func (t *Table) Live() int {
	n := 0
	for i := range t.lines {
		if t.lines[i].valid {
			n++
		}
	}
	return n
}

// NextDeadline returns the earliest flush deadline among valid lines, or
// ok=false when the table is empty.
func (t *Table) NextDeadline() (uint64, bool) {
	min, ok := ^uint64(0), false
	for i := range t.lines {
		l := &t.lines[i]
		if l.valid && l.deadline < min {
			min, ok = l.deadline, true
		}
	}
	return min, ok
}

// PadIdle accounts cycles the hosting hub slept through: the live-line
// population is constant while no requests arrive and no deadline passes,
// so the occupancy integral extends linearly.
func (t *Table) PadIdle(cycles uint64) {
	if cycles == 0 {
		return
	}
	t.Stats.OccupancySum.Add(cycles * uint64(t.Live()))
	t.Stats.OccupancyTicks.Add(cycles)
}

// MeanOccupancy returns the average number of live lines per cycle.
func (t *Table) MeanOccupancy() float64 {
	return stats.Ratio(t.Stats.OccupancySum.Value(), t.Stats.OccupancyTicks.Value())
}

// Pending returns the number of in-flight batches awaiting responses.
func (t *Table) Pending() int { return len(t.inflight) }

// byteMask returns the line bitmap bits covered by an access of size bytes
// at line offset off.
func byteMask(off uint64, size int) uint64 {
	if size >= 64 {
		return ^uint64(0)
	}
	return (uint64(1)<<uint(size) - 1) << off
}
