package mact

import (
	"testing"
	"testing/quick"

	"smarco/internal/noc"
	"smarco/internal/sim"
)

var mc0 = func(addr uint64) noc.NodeID { return noc.MCNode(0) }

func readReq(id, addr uint64, size int, src noc.NodeID) *noc.Packet {
	return noc.NewMemReqPacket(id, src, noc.MCNode(0),
		noc.MemReq{ID: id, Addr: addr, Size: size}, false, false, 0)
}

func writeReq(id, addr uint64, size int, data uint64, src noc.NodeID) *noc.Packet {
	return noc.NewMemReqPacket(id, src, noc.MCNode(0),
		noc.MemReq{ID: id, Addr: addr, Size: size, Data: data}, true, false, 0)
}

func TestCollectsReadsIntoOneBatch(t *testing.T) {
	tab := New(noc.HubNode(0), Config{Lines: 8, Threshold: 16, Enabled: true})
	// Four cores read adjacent 2-byte values in the same 64-byte line.
	for i := 0; i < 4; i++ {
		out, absorbed := tab.Offer(readReq(uint64(i+1), uint64(i*2), 2, noc.CoreNode(i)), 0, mc0)
		if !absorbed || len(out) != 0 {
			t.Fatalf("read %d: absorbed=%v out=%d", i, absorbed, len(out))
		}
	}
	if got := tab.Stats.Collected.Value(); got != 4 {
		t.Fatalf("collected = %d", got)
	}
	// Nothing flushes before the threshold.
	if out := tab.Expire(15, mc0); len(out) != 0 {
		t.Fatalf("flushed %d lines before deadline", len(out))
	}
	out := tab.Expire(16, mc0)
	if len(out) != 1 {
		t.Fatalf("deadline flush produced %d packets, want 1", len(out))
	}
	if out[0].Kind != noc.KBatchRead {
		t.Fatalf("kind = %v", out[0].Kind)
	}
	req := out[0].Payload.(noc.BatchReq)
	if req.Bitmap != 0xFF {
		t.Fatalf("bitmap = %#x, want 0xFF", req.Bitmap)
	}
}

func TestScatterAfterBatchResponse(t *testing.T) {
	tab := New(noc.HubNode(0), Default())
	tab.Offer(readReq(1, 0, 2, noc.CoreNode(0)), 0, mc0)
	tab.Offer(readReq(2, 4, 4, noc.CoreNode(1)), 0, mc0)
	batch := tab.Expire(100, mc0)
	if len(batch) != 1 {
		t.Fatalf("batches = %d", len(batch))
	}
	breq := batch[0].Payload.(noc.BatchReq)
	var data [64]byte
	data[0], data[1] = 0x34, 0x12
	data[4], data[5], data[6], data[7] = 0xDD, 0xCC, 0xBB, 0xAA
	resp := noc.NewBatchRespPacket(breq.ID, noc.MCNode(0), noc.HubNode(0),
		noc.BatchResp{ID: breq.ID, LineAddr: breq.LineAddr, Bitmap: breq.Bitmap, Data: data}, 101)
	outs := tab.OnBatchResp(resp, 101)
	if len(outs) != 2 {
		t.Fatalf("scattered = %d, want 2", len(outs))
	}
	r0 := outs[0].Payload.(noc.MemResp)
	r1 := outs[1].Payload.(noc.MemResp)
	if r0.Data != 0x1234 {
		t.Fatalf("r0 data = %#x", r0.Data)
	}
	if r1.Data != 0xAABBCCDD {
		t.Fatalf("r1 data = %#x", r1.Data)
	}
	if outs[0].Dst != noc.CoreNode(0) || outs[1].Dst != noc.CoreNode(1) {
		t.Fatal("responses routed to wrong cores")
	}
	if tab.Pending() != 0 {
		t.Fatalf("pending = %d after scatter", tab.Pending())
	}
}

func TestWriteBatchCarriesData(t *testing.T) {
	tab := New(noc.HubNode(0), Default())
	tab.Offer(writeReq(1, 8, 2, 0xBEEF, noc.CoreNode(0)), 0, mc0)
	tab.Offer(writeReq(2, 10, 1, 0x7, noc.CoreNode(1)), 0, mc0)
	out := tab.Expire(100, mc0)
	if len(out) != 1 || out[0].Kind != noc.KBatchWrite {
		t.Fatalf("out = %v", out)
	}
	req := out[0].Payload.(noc.BatchReq)
	if req.Bitmap != 0x7<<8 {
		t.Fatalf("bitmap = %#x", req.Bitmap)
	}
	if req.Data[8] != 0xEF || req.Data[9] != 0xBE || req.Data[10] != 0x7 {
		t.Fatalf("data = %v", req.Data[8:11])
	}
}

func TestFullBitmapFlushesImmediately(t *testing.T) {
	tab := New(noc.HubNode(0), Default())
	var flushed []*noc.Packet
	for i := 0; i < 8; i++ {
		out, absorbed := tab.Offer(writeReq(uint64(i+1), uint64(i*8), 8, 0, noc.CoreNode(0)), 0, mc0)
		if !absorbed {
			t.Fatalf("write %d not absorbed", i)
		}
		flushed = append(flushed, out...)
	}
	if len(flushed) != 1 {
		t.Fatalf("full-line flush produced %d packets", len(flushed))
	}
	if tab.Stats.FullFlush.Value() != 1 {
		t.Fatal("full flush not counted")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	tab := New(noc.HubNode(0), Default())
	tab.Offer(writeReq(1, 16, 8, 0x1122334455667788, noc.CoreNode(0)), 0, mc0)
	out, absorbed := tab.Offer(readReq(2, 18, 2, noc.CoreNode(0)), 1, mc0)
	if !absorbed || len(out) != 1 {
		t.Fatalf("forward failed: absorbed=%v out=%d", absorbed, len(out))
	}
	if out[0].Kind != noc.KRespRead {
		t.Fatalf("kind = %v", out[0].Kind)
	}
	resp := out[0].Payload.(noc.MemResp)
	if resp.Data != 0x5566 {
		t.Fatalf("forwarded data = %#x, want 0x5566", resp.Data)
	}
	if tab.Stats.Forwards.Value() != 1 {
		t.Fatal("forward not counted")
	}
}

func TestPartialOverlapFlushesWriteLine(t *testing.T) {
	tab := New(noc.HubNode(0), Default())
	tab.Offer(writeReq(1, 32, 2, 0xAAAA, noc.CoreNode(0)), 0, mc0)
	out, absorbed := tab.Offer(readReq(2, 32, 8, noc.CoreNode(0)), 1, mc0)
	if absorbed {
		t.Fatal("partially overlapping read must not be absorbed")
	}
	if len(out) != 1 || out[0].Kind != noc.KBatchWrite {
		t.Fatalf("expected hazard flush of the write line, got %v", out)
	}
	if tab.Stats.HazardFlush.Value() != 1 {
		t.Fatal("hazard flush not counted")
	}
}

func TestPriorityAndLargeBypass(t *testing.T) {
	tab := New(noc.HubNode(0), Default())
	pri := readReq(1, 0, 8, noc.CoreNode(0))
	pri.Priority = true
	if _, absorbed := tab.Offer(pri, 0, mc0); absorbed {
		t.Fatal("priority request must bypass MACT")
	}
	big := noc.NewMemReqPacket(2, noc.CoreNode(0), noc.MCNode(0),
		noc.MemReq{ID: 2, Addr: 0, Size: 64}, false, false, 0)
	if _, absorbed := tab.Offer(big, 0, mc0); absorbed {
		t.Fatal("line-sized request must bypass MACT")
	}
	straddle := readReq(3, 62, 4, noc.CoreNode(0))
	if _, absorbed := tab.Offer(straddle, 0, mc0); absorbed {
		t.Fatal("line-straddling request must bypass MACT")
	}
	if tab.Stats.Bypassed.Value() != 3 {
		t.Fatalf("bypassed = %d", tab.Stats.Bypassed.Value())
	}
}

func TestDisabledTableBypassesEverything(t *testing.T) {
	tab := New(noc.HubNode(0), Config{Lines: 8, Threshold: 16, Enabled: false})
	if _, absorbed := tab.Offer(readReq(1, 0, 2, noc.CoreNode(0)), 0, mc0); absorbed {
		t.Fatal("disabled table absorbed a request")
	}
}

func TestCapacityEviction(t *testing.T) {
	tab := New(noc.HubNode(0), Config{Lines: 2, Threshold: 1000, Enabled: true})
	tab.Offer(readReq(1, 0, 2, noc.CoreNode(0)), 0, mc0)
	tab.Offer(readReq(2, 64, 2, noc.CoreNode(0)), 1, mc0)
	out, absorbed := tab.Offer(readReq(3, 128, 2, noc.CoreNode(0)), 2, mc0)
	if !absorbed {
		t.Fatal("request not absorbed after eviction")
	}
	if len(out) != 1 {
		t.Fatalf("capacity eviction emitted %d packets", len(out))
	}
	if out[0].Payload.(noc.BatchReq).LineAddr != 0 {
		t.Fatal("oldest line should be evicted")
	}
	if tab.Stats.CapacityFlush.Value() != 1 {
		t.Fatal("capacity flush not counted")
	}
}

// TestNeverDropsOrDuplicates: every absorbed read is answered exactly once
// across forwarding and scattering, for random request streams.
func TestNeverDropsOrDuplicates(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		tab := New(noc.HubNode(0), Config{Lines: 4, Threshold: 8, Enabled: true})
		answered := map[uint64]int{}
		expect := map[uint64]bool{}
		var inFlight []*noc.Packet
		record := func(pkts []*noc.Packet) {
			for _, p := range pkts {
				switch p.Kind {
				case noc.KRespRead:
					answered[p.Payload.(noc.MemResp).ID]++
				case noc.KBatchRead, noc.KBatchWrite:
					inFlight = append(inFlight, p)
				}
			}
		}
		id := uint64(0)
		for now := uint64(0); now < 120; now++ {
			for k := 0; k < rng.Intn(3); k++ {
				id++
				addr := uint64(rng.Intn(4) * 64)
				off := uint64(rng.Intn(32))
				sz := []int{1, 2, 4, 8}[rng.Intn(4)]
				var pkts []*noc.Packet
				var absorbed bool
				if rng.Intn(2) == 0 {
					pkts, absorbed = tab.Offer(readReq(id, addr+off, sz, noc.CoreNode(rng.Intn(4))), now, mc0)
					if absorbed {
						expect[id] = true
					}
				} else {
					pkts, _ = tab.Offer(writeReq(id, addr+off, sz, rng.Uint64(), noc.CoreNode(rng.Intn(4))), now, mc0)
				}
				record(pkts)
			}
			record(tab.Expire(now, mc0))
			// Answer one in-flight batch per cycle.
			if len(inFlight) > 0 {
				b := inFlight[0]
				inFlight = inFlight[1:]
				breq := b.Payload.(noc.BatchReq)
				resp := noc.NewBatchRespPacket(breq.ID, noc.MCNode(0), noc.HubNode(0),
					noc.BatchResp{ID: breq.ID, LineAddr: breq.LineAddr, Bitmap: breq.Bitmap, Write: breq.Write}, now)
				record(tab.OnBatchResp(resp, now))
			}
		}
		// Drain: expire everything and answer remaining batches.
		record(tab.Expire(10_000, mc0))
		for len(inFlight) > 0 {
			b := inFlight[0]
			inFlight = inFlight[1:]
			breq := b.Payload.(noc.BatchReq)
			resp := noc.NewBatchRespPacket(breq.ID, noc.MCNode(0), noc.HubNode(0),
				noc.BatchResp{ID: breq.ID, LineAddr: breq.LineAddr, Bitmap: breq.Bitmap, Write: breq.Write}, 10_001)
			record(tab.OnBatchResp(resp, 10_001))
		}
		for id := range expect {
			if answered[id] != 1 {
				return false
			}
		}
		for id, n := range answered {
			if n != 1 || !expect[id] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanOccupancy(t *testing.T) {
	tab := New(noc.HubNode(0), Default())
	tab.Offer(readReq(1, 0, 2, noc.CoreNode(0)), 0, mc0)
	tab.Expire(1, mc0)
	tab.Expire(2, mc0)
	if tab.MeanOccupancy() != 1 {
		t.Fatalf("mean occupancy = %v", tab.MeanOccupancy())
	}
}
