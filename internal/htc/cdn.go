// Package htc contains the motivation-study models of the paper's
// introduction: the Nginx/10 GbE CDN characterization (Fig. 2) and the
// memory-access-granularity comparison between HTC applications and
// conventional SPLASH2-class workloads (Fig. 8).
//
// The paper measured Fig. 2 on a physical testbed (Nginx, a 10 Gbps NIC,
// 25 Mbps video streams). That hardware is substituted by a closed-loop
// session model driving the same conventional-processor cache and branch
// structures: per-chunk request parsing touches a shared predictor and
// connection table while the video payload streams through the cache with
// no reuse — reproducing the under-10% CPU utilization at the NIC limit,
// the >10% branch miss ratio, and the ~40% L1 miss ratio the paper reports.
package htc

import (
	"smarco/internal/cache"
	"smarco/internal/sim"
)

// CDNConfig describes the CDN testbed model.
type CDNConfig struct {
	NICGbps    float64 // NIC line rate (paper: 10 Gbps)
	StreamMbps float64 // per-client video rate (paper: 25 Mbps)
	ChunkBytes int     // service unit per connection wakeup
	ClockHz    float64 // server CPU clock
	Cores      int

	// Per-chunk CPU work model.
	ParseInstr     int     // request/response handling instructions
	BaseCPI        float64 // issue-bound CPI
	BranchesPerOp  int     // branches per chunk parse
	PredictorSlots int     // shared branch predictor capacity
	MispredictCost int
	L1             cache.Config
	L1MissCost     int
	ConnStateBytes int // per-connection state touched every chunk
	// PayloadStride is the copy-loop access width (32 B ≈ AVX memcpy):
	// each cache line is touched LineBytes/PayloadStride times, which is
	// what sets the L1 miss ratio on streaming payload.
	PayloadStride int
}

// DefaultCDN matches the paper's testbed.
func DefaultCDN() CDNConfig {
	return CDNConfig{
		NICGbps:        10,
		StreamMbps:     25,
		ChunkBytes:     64 << 10,
		ClockHz:        2.2e9,
		Cores:          24,
		ParseInstr:     6000,
		BaseCPI:        0.35,
		BranchesPerOp:  400,
		PredictorSlots: 32768,
		MispredictCost: 15,
		L1:             cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitLatency: 4},
		L1MissCost:     12,
		ConnStateBytes: 512,
		PayloadStride:  32,
	}
}

// MaxClients returns the NIC-limited connection count.
func (c CDNConfig) MaxClients() int {
	return int(c.NICGbps * 1000 / c.StreamMbps)
}

// CDNPoint is one measurement of Fig. 2.
type CDNPoint struct {
	Clients    int
	GoodputGbs float64 // delivered bandwidth
	CPUUtil    float64 // fraction of CPU capacity busy
	BranchMiss float64
	L1Miss     float64
}

// RunCDN simulates the CDN for the given client count over a model second
// and returns the measured point.
func RunCDN(cfg CDNConfig, clients int, seed uint64) CDNPoint {
	rng := sim.NewRNG(seed ^ 0xCD4)
	l1 := cache.MustNew(cfg.L1)
	// 2-bit saturating counters, shared by all connections.
	predictor := make([]int8, cfg.PredictorSlots)

	// Effective per-client rate: the NIC caps aggregate goodput.
	demandGbs := float64(clients) * cfg.StreamMbps / 1000
	goodput := demandGbs
	if goodput > cfg.NICGbps {
		goodput = cfg.NICGbps
	}
	chunksPerSec := goodput * 1e9 / 8 / float64(cfg.ChunkBytes)

	// Simulate a sampled subset of chunks and scale: behaviour is
	// per-chunk stationary.
	sample := 2000
	if sample > int(chunksPerSec) && chunksPerSec > 0 {
		sample = int(chunksPerSec)
	}
	if sample == 0 {
		return CDNPoint{Clients: clients}
	}

	var busy float64
	var branches, mispredicts uint64
	// Per-connection stream positions (video files >1 GB: no reuse).
	streamPos := make([]uint64, clients)
	for i := range streamPos {
		streamPos[i] = uint64(i) << 34 // distinct videos
	}

	for s := 0; s < sample; s++ {
		conn := rng.Intn(clients)
		touch := func(addr uint64, write bool) {
			if !l1.Access(addr, write) {
				l1.Fill(addr, write)
				busy += float64(cfg.L1MissCost)
			}
		}
		// Connection state: per-connection table lines, 8-byte fields.
		stateBase := uint64(0x10_0000_0000) + uint64(conn)*uint64(cfg.ConnStateBytes)
		for b := 0; b < cfg.ConnStateBytes; b += 8 {
			touch(stateBase+uint64(b), true)
		}
		// Header parse buffer: hot per-core scratch (hits after warmup).
		for b := 0; b < 4096; b += 8 {
			touch(0x20_0000_0000+uint64(b), false)
		}
		// Video payload copy: read the file buffer, write the socket
		// buffer, both pure streaming at the vector copy width.
		sockBase := uint64(0x30_0000_0000) + uint64(conn)<<22
		for b := 0; b < cfg.ChunkBytes; b += cfg.PayloadStride {
			touch(streamPos[conn], false)
			touch(sockBase+uint64(b%(1<<20)), true)
			streamPos[conn] += uint64(cfg.PayloadStride)
		}
		// Branches: header parsing with connection-dependent outcomes
		// aliasing in the shared predictor.
		for b := 0; b < cfg.BranchesPerOp; b++ {
			branches++
			slot := (uint64(conn)*2654435761 + uint64(b)*40503) % uint64(cfg.PredictorSlots)
			taken := (uint64(conn)+uint64(b))%3 != 0
			predicted := predictor[slot] >= 2
			if predicted != taken {
				mispredicts++
				busy += float64(cfg.MispredictCost)
			}
			if taken && predictor[slot] < 3 {
				predictor[slot]++
			}
			if !taken && predictor[slot] > 0 {
				predictor[slot]--
			}
		}
		busy += float64(cfg.ParseInstr) * cfg.BaseCPI
	}

	// Scale the sampled busy time to the full second.
	busyPerChunk := busy / float64(sample)
	busyTotal := busyPerChunk * chunksPerSec
	capacity := cfg.ClockHz * float64(cfg.Cores)

	return CDNPoint{
		Clients:    clients,
		GoodputGbs: goodput,
		CPUUtil:    busyTotal / capacity,
		BranchMiss: float64(mispredicts) / float64(branches),
		L1Miss:     l1.Stats.MissRatio(),
	}
}

// CDNSweep produces the Fig. 2 series up to (and slightly past) the NIC
// limit.
func CDNSweep(cfg CDNConfig, seed uint64) []CDNPoint {
	max := cfg.MaxClients()
	counts := []int{10, 25, 50, 100, 150, 200, 250, 300, 350, max, max + 50}
	out := make([]CDNPoint, 0, len(counts))
	for _, n := range counts {
		out = append(out, RunCDN(cfg, n, seed))
	}
	return out
}
