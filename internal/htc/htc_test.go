package htc

import (
	"math"
	"testing"
)

func TestCDNMaxClients(t *testing.T) {
	if got := DefaultCDN().MaxClients(); got != 400 {
		t.Fatalf("10 Gbps / 25 Mbps = %d, want 400", got)
	}
}

// TestCDNShapeMatchesFig2 checks the three headline observations of Fig. 2:
// goodput saturates at the NIC limit, CPU stays under 10% there, branch
// misses exceed 10% near the limit, and L1 misses sit near 40%.
func TestCDNShapeMatchesFig2(t *testing.T) {
	cfg := DefaultCDN()
	atLimit := RunCDN(cfg, cfg.MaxClients(), 1)
	if atLimit.GoodputGbs != cfg.NICGbps {
		t.Fatalf("goodput at limit = %v", atLimit.GoodputGbs)
	}
	if atLimit.CPUUtil >= 0.10 {
		t.Fatalf("CPU util at NIC limit = %.3f, paper reports < 0.10", atLimit.CPUUtil)
	}
	if atLimit.CPUUtil <= 0.005 {
		t.Fatalf("CPU util %.4f implausibly low", atLimit.CPUUtil)
	}
	if atLimit.BranchMiss <= 0.10 {
		t.Fatalf("branch miss at limit = %.3f, paper reports > 0.10", atLimit.BranchMiss)
	}
	if atLimit.L1Miss < 0.25 || atLimit.L1Miss > 0.60 {
		t.Fatalf("L1 miss = %.3f, paper reports ≈ 0.40", atLimit.L1Miss)
	}
}

func TestCDNGoodputCapped(t *testing.T) {
	cfg := DefaultCDN()
	over := RunCDN(cfg, cfg.MaxClients()+100, 1)
	if over.GoodputGbs > cfg.NICGbps {
		t.Fatal("goodput exceeded the NIC rate")
	}
}

func TestCDNBranchMissGrowsWithClients(t *testing.T) {
	cfg := DefaultCDN()
	few := RunCDN(cfg, 10, 1)
	many := RunCDN(cfg, cfg.MaxClients(), 1)
	if many.BranchMiss <= few.BranchMiss {
		t.Fatalf("branch miss did not grow: %.3f -> %.3f", few.BranchMiss, many.BranchMiss)
	}
}

func TestCDNSweepMonotoneGoodput(t *testing.T) {
	pts := CDNSweep(DefaultCDN(), 2)
	if len(pts) < 5 {
		t.Fatal("sweep too short")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].GoodputGbs+1e-9 < pts[i-1].GoodputGbs {
			t.Fatalf("goodput decreased at point %d", i)
		}
	}
}

func TestSplashProfilesNormalized(t *testing.T) {
	profiles := SplashProfiles()
	if len(profiles) != 11 {
		t.Fatalf("SPLASH2 set has %d apps, want 11 (per Fig. 8)", len(profiles))
	}
	for name, d := range profiles {
		sum := 0.0
		for _, f := range d {
			sum += f
		}
		if math.Abs(sum-1) > 0.01 {
			t.Fatalf("%s distribution sums to %v", name, sum)
		}
		if d.SmallFraction(2) > 0.10 {
			t.Fatalf("%s: conventional app with %.2f small accesses", name, d.SmallFraction(2))
		}
	}
}

// TestFig8Contrast is the figure's message: HTC apps issue far more small
// accesses than conventional apps.
func TestFig8Contrast(t *testing.T) {
	htcP, err := HTCProfiles(3)
	if err != nil {
		t.Fatal(err)
	}
	splash := SplashProfiles()
	var htcSmall, convSmall float64
	for _, d := range htcP {
		htcSmall += d.SmallFraction(2)
	}
	htcSmall /= float64(len(htcP))
	for _, d := range splash {
		convSmall += d.SmallFraction(2)
	}
	convSmall /= float64(len(splash))
	if htcSmall <= 3*convSmall {
		t.Fatalf("HTC small-access fraction %.3f not clearly above conventional %.3f", htcSmall, convSmall)
	}
}

func TestDistributionHelpers(t *testing.T) {
	d := Distribution{1: 0.5, 8: 0.5}
	sizes := d.SortedSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 8 {
		t.Fatalf("sizes = %v", sizes)
	}
	if d.SmallFraction(2) != 0.5 {
		t.Fatalf("small fraction = %v", d.SmallFraction(2))
	}
}

// TestCDNDeterministic: the testbed model is a pure function of (config,
// clients, seed) — identical calls must agree field-for-field, across both
// single points and whole sweeps.
func TestCDNDeterministic(t *testing.T) {
	cfg := DefaultCDN()
	for _, seed := range []uint64{1, 7, 42} {
		a := RunCDN(cfg, 150, seed)
		b := RunCDN(cfg, 150, seed)
		if a != b {
			t.Fatalf("seed %d: RunCDN not deterministic: %+v vs %+v", seed, a, b)
		}
	}
	s1 := CDNSweep(cfg, 9)
	s2 := CDNSweep(cfg, 9)
	if len(s1) != len(s2) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sweep point %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	// The seed only drives chunk sampling: the bandwidth identities hold
	// for any seed.
	for _, seed := range []uint64{1, 7, 42} {
		p := RunCDN(cfg, 150, seed)
		if p.GoodputGbs != 150*cfg.StreamMbps/1000 {
			t.Fatalf("seed %d perturbed goodput: %v", seed, p.GoodputGbs)
		}
	}
}

// TestMaxClientsBoundRespected: below MaxClients demand is fully served;
// at and beyond it, goodput pins to the NIC rate — for several link/stream
// combinations, not just the paper's.
func TestMaxClientsBoundRespected(t *testing.T) {
	for _, tc := range []struct {
		nic    float64
		stream float64
	}{
		{10, 25}, {40, 25}, {10, 50}, {1, 5},
	} {
		cfg := DefaultCDN()
		cfg.NICGbps = tc.nic
		cfg.StreamMbps = tc.stream
		limit := cfg.MaxClients()
		if want := int(tc.nic * 1000 / tc.stream); limit != want {
			t.Fatalf("%+v: MaxClients = %d, want %d", tc, limit, want)
		}
		under := RunCDN(cfg, limit/2, 1)
		if want := float64(limit/2) * tc.stream / 1000; under.GoodputGbs != want {
			t.Fatalf("%+v: under limit goodput %v, want %v", tc, under.GoodputGbs, want)
		}
		for _, clients := range []int{limit, limit + 1, limit * 2} {
			p := RunCDN(cfg, clients, 1)
			if p.GoodputGbs != tc.nic {
				t.Fatalf("%+v at %d clients: goodput %v, want NIC rate %v", tc, clients, p.GoodputGbs, tc.nic)
			}
		}
	}
}
