package htc

import (
	"math"
	"testing"
)

func TestCDNMaxClients(t *testing.T) {
	if got := DefaultCDN().MaxClients(); got != 400 {
		t.Fatalf("10 Gbps / 25 Mbps = %d, want 400", got)
	}
}

// TestCDNShapeMatchesFig2 checks the three headline observations of Fig. 2:
// goodput saturates at the NIC limit, CPU stays under 10% there, branch
// misses exceed 10% near the limit, and L1 misses sit near 40%.
func TestCDNShapeMatchesFig2(t *testing.T) {
	cfg := DefaultCDN()
	atLimit := RunCDN(cfg, cfg.MaxClients(), 1)
	if atLimit.GoodputGbs != cfg.NICGbps {
		t.Fatalf("goodput at limit = %v", atLimit.GoodputGbs)
	}
	if atLimit.CPUUtil >= 0.10 {
		t.Fatalf("CPU util at NIC limit = %.3f, paper reports < 0.10", atLimit.CPUUtil)
	}
	if atLimit.CPUUtil <= 0.005 {
		t.Fatalf("CPU util %.4f implausibly low", atLimit.CPUUtil)
	}
	if atLimit.BranchMiss <= 0.10 {
		t.Fatalf("branch miss at limit = %.3f, paper reports > 0.10", atLimit.BranchMiss)
	}
	if atLimit.L1Miss < 0.25 || atLimit.L1Miss > 0.60 {
		t.Fatalf("L1 miss = %.3f, paper reports ≈ 0.40", atLimit.L1Miss)
	}
}

func TestCDNGoodputCapped(t *testing.T) {
	cfg := DefaultCDN()
	over := RunCDN(cfg, cfg.MaxClients()+100, 1)
	if over.GoodputGbs > cfg.NICGbps {
		t.Fatal("goodput exceeded the NIC rate")
	}
}

func TestCDNBranchMissGrowsWithClients(t *testing.T) {
	cfg := DefaultCDN()
	few := RunCDN(cfg, 10, 1)
	many := RunCDN(cfg, cfg.MaxClients(), 1)
	if many.BranchMiss <= few.BranchMiss {
		t.Fatalf("branch miss did not grow: %.3f -> %.3f", few.BranchMiss, many.BranchMiss)
	}
}

func TestCDNSweepMonotoneGoodput(t *testing.T) {
	pts := CDNSweep(DefaultCDN(), 2)
	if len(pts) < 5 {
		t.Fatal("sweep too short")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].GoodputGbs+1e-9 < pts[i-1].GoodputGbs {
			t.Fatalf("goodput decreased at point %d", i)
		}
	}
}

func TestSplashProfilesNormalized(t *testing.T) {
	profiles := SplashProfiles()
	if len(profiles) != 11 {
		t.Fatalf("SPLASH2 set has %d apps, want 11 (per Fig. 8)", len(profiles))
	}
	for name, d := range profiles {
		sum := 0.0
		for _, f := range d {
			sum += f
		}
		if math.Abs(sum-1) > 0.01 {
			t.Fatalf("%s distribution sums to %v", name, sum)
		}
		if d.SmallFraction(2) > 0.10 {
			t.Fatalf("%s: conventional app with %.2f small accesses", name, d.SmallFraction(2))
		}
	}
}

// TestFig8Contrast is the figure's message: HTC apps issue far more small
// accesses than conventional apps.
func TestFig8Contrast(t *testing.T) {
	htcP, err := HTCProfiles(3)
	if err != nil {
		t.Fatal(err)
	}
	splash := SplashProfiles()
	var htcSmall, convSmall float64
	for _, d := range htcP {
		htcSmall += d.SmallFraction(2)
	}
	htcSmall /= float64(len(htcP))
	for _, d := range splash {
		convSmall += d.SmallFraction(2)
	}
	convSmall /= float64(len(splash))
	if htcSmall <= 3*convSmall {
		t.Fatalf("HTC small-access fraction %.3f not clearly above conventional %.3f", htcSmall, convSmall)
	}
}

func TestDistributionHelpers(t *testing.T) {
	d := Distribution{1: 0.5, 8: 0.5}
	sizes := d.SortedSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 8 {
		t.Fatalf("sizes = %v", sizes)
	}
	if d.SmallFraction(2) != 0.5 {
		t.Fatalf("small fraction = %v", d.SmallFraction(2))
	}
}
