package htc

import (
	"sort"

	"smarco/internal/kernels"
)

// Distribution maps access granularity in bytes (1, 2, 4, 8) to its
// fraction of all memory accesses.
type Distribution map[int]float64

// SplashProfiles returns synthetic memory-access-granularity distributions
// for eleven SPLASH2-class conventional applications (the right half of
// Fig. 8). The paper profiled the real suite; lacking those traces, these
// distributions encode the well-known property the figure shows — dense
// numeric kernels access memory almost exclusively at word (4 B) and
// double (8 B) granularity — which is all downstream consumers rely on.
func SplashProfiles() map[string]Distribution {
	return map[string]Distribution{
		"barnes":    {1: 0.01, 2: 0.01, 4: 0.20, 8: 0.78},
		"fmm":       {1: 0.01, 2: 0.01, 4: 0.16, 8: 0.82},
		"ocean":     {1: 0.00, 2: 0.01, 4: 0.12, 8: 0.87},
		"radiosity": {1: 0.02, 2: 0.02, 4: 0.30, 8: 0.66},
		"raytrace":  {1: 0.02, 2: 0.02, 4: 0.26, 8: 0.70},
		"water-nsq": {1: 0.00, 2: 0.01, 4: 0.09, 8: 0.90},
		"water-sp":  {1: 0.00, 2: 0.01, 4: 0.08, 8: 0.91},
		"cholesky":  {1: 0.01, 2: 0.01, 4: 0.18, 8: 0.80},
		"fft":       {1: 0.00, 2: 0.00, 4: 0.10, 8: 0.90},
		"lu":        {1: 0.00, 2: 0.00, 4: 0.08, 8: 0.92},
		"radix":     {1: 0.02, 2: 0.02, 4: 0.36, 8: 0.60},
	}
}

// HTCProfiles measures the left half of Fig. 8 by executing each benchmark
// kernel and counting access granularities.
func HTCProfiles(seed uint64) (map[string]Distribution, error) {
	out := make(map[string]Distribution, len(kernels.Names))
	for _, name := range kernels.Names {
		w := kernels.MustNew(name, kernels.Config{Seed: seed, Tasks: 4})
		counts, err := kernels.GranularityProfile(w)
		if err != nil {
			return nil, err
		}
		var total uint64
		for _, c := range counts {
			total += c
		}
		d := Distribution{}
		for size, c := range counts {
			d[size] = float64(c) / float64(total)
		}
		out[name] = d
	}
	return out, nil
}

// SmallFraction returns the fraction of accesses at or below maxBytes.
func (d Distribution) SmallFraction(maxBytes int) float64 {
	f := 0.0
	for size, frac := range d {
		if size <= maxBytes {
			f += frac
		}
	}
	return f
}

// SortedSizes returns the distribution's granularities in ascending order.
func (d Distribution) SortedSizes() []int {
	sizes := make([]int, 0, len(d))
	for s := range d {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return sizes
}
