package sampling

import (
	"math"
	"testing"
)

func TestPlanPartitionsTasks(t *testing.T) {
	cases := []struct {
		tasks int
		cfg   Config
	}{
		{1, Config{Every: 10_000, Window: 1_000}},
		{2, Config{Every: 10_000, Window: 1_000}},
		{7, Config{Every: 10_000, Window: 1_000}},
		{64, Config{Every: 10_000, Window: 1_000}},
		{64, Config{Every: 10_000, Window: 10_000}},
		{100, Config{Every: 5_000, Window: 1_000, Windows: 2}},
		{100, Config{Every: 5_000, Window: 1_000, Windows: 100}},
		{1000, Config{Every: 1_000_000, Window: 1}},
		{3, Config{Every: 7, Window: 3, Windows: 1}},
	}
	for _, tc := range cases {
		s, err := Plan(tc.tasks, tc.cfg)
		if err != nil {
			t.Fatalf("Plan(%d, %+v): %v", tc.tasks, tc.cfg, err)
		}
		next := 0
		seenWindow := false
		for _, sp := range s.Spans {
			if sp.Start != next || sp.End <= sp.Start {
				t.Fatalf("Plan(%d, %+v): span %+v breaks coverage at %d", tc.tasks, tc.cfg, sp, next)
			}
			if !sp.Detailed && !seenWindow {
				t.Fatalf("Plan(%d, %+v): fast-forward span before any window", tc.tasks, tc.cfg)
			}
			seenWindow = seenWindow || sp.Detailed
			next = sp.End
		}
		if next != tc.tasks {
			t.Fatalf("Plan(%d, %+v): covers %d tasks", tc.tasks, tc.cfg, next)
		}
		if s.DetailedTasks+s.FastTasks != tc.tasks {
			t.Fatalf("Plan(%d, %+v): detailed %d + fast %d != tasks", tc.tasks, tc.cfg, s.DetailedTasks, s.FastTasks)
		}
		if s.DetailedTasks < 1 {
			t.Fatalf("Plan(%d, %+v): no detailed tasks", tc.tasks, tc.cfg)
		}
		if nw := s.Windows(); nw < 1 || (tc.cfg.Windows > 0 && nw > tc.cfg.Windows) {
			t.Fatalf("Plan(%d, %+v): %d windows", tc.tasks, tc.cfg, nw)
		}
	}
}

func TestPlanDutyRatio(t *testing.T) {
	s, err := Plan(1000, Config{Every: 100_000, Window: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if s.DetailedTasks != 100 {
		t.Fatalf("10%% duty over 1000 tasks: %d detailed, want 100", s.DetailedTasks)
	}
	// Window == Every degenerates to all-detailed.
	s, err = Plan(50, Config{Every: 1_000, Window: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if s.FastTasks != 0 || s.DetailedTasks != 50 {
		t.Fatalf("duty 1: detailed %d fast %d, want 50/0", s.DetailedTasks, s.FastTasks)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config: %v", err)
	}
	bad := []Config{
		{Every: 100},                          // window 0
		{Every: 100, Window: 101},             // window > every
		{Every: 100, Window: 10, Windows: -1}, // negative count
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("Validate(%+v): no error", cfg)
		}
	}
	if _, err := Plan(0, Config{Every: 100, Window: 10}); err == nil {
		t.Fatal("Plan with 0 tasks: no error")
	}
	if _, err := Plan(10, Config{}); err == nil {
		t.Fatal("Plan with sampling disabled: no error")
	}
}

func TestEstimatorMath(t *testing.T) {
	var e Estimator
	// Window 0: 10 tasks, 1200 cycles, steady rate 100 cycles/task.
	e.AddWindow(Window{Tasks: 10, Cycles: 1200, Rate: 100})
	e.AddFast(40) // + 4000
	// Window 1: 10 tasks, 1300 cycles, steady rate 110 — charged at rate.
	e.AddWindow(Window{Tasks: 10, Cycles: 1300, Rate: 110})
	e.AddFast(40) // + 4400

	want := 1200.0 + 40*100 + 10*110 + 40*110
	if got := e.Cycles(); got != uint64(math.Round(want)) {
		t.Fatalf("estimate %d, want %v", got, want)
	}
	if e.DetailedCycles() != 2500 {
		t.Fatalf("detailed %d, want 2500", e.DetailedCycles())
	}
	res := e.Result()
	if res.Windows != 2 || res.FastTasks != 80 {
		t.Fatalf("result %+v", res)
	}
	// Two windows: t(1 df) = 12.706, sd = |100-110|/sqrt(2)·sqrt(2) = ...
	// mean 105, ss = 25+25 = 50, sd = sqrt(50/1) ≈ 7.071.
	// half = 12.706 · 7.071/√2 · 90 charged tasks.
	half := 12.706 * math.Sqrt(50) / math.Sqrt2 * 90
	wantRel := half / want
	if math.Abs(res.RelErr-wantRel) > 1e-9 {
		t.Fatalf("RelErr %v, want %v", res.RelErr, wantRel)
	}
}

func TestEstimatorSingleWindow(t *testing.T) {
	var e Estimator
	e.AddWindow(Window{Tasks: 5, Cycles: 700, Rate: 120})
	res := e.Result()
	if res.RelErr != 0 {
		t.Fatalf("single window RelErr %v, want 0", res.RelErr)
	}
	if res.Cycles != 700 {
		t.Fatalf("single window estimate %d, want 700", res.Cycles)
	}
}

func TestTQuantile(t *testing.T) {
	if got := tQuantile95(1); got != 12.706 {
		t.Fatalf("t(1) = %v", got)
	}
	if got := tQuantile95(31); got != 1.960 {
		t.Fatalf("t(31) = %v", got)
	}
	if got := tQuantile95(0); got != 0 {
		t.Fatalf("t(0) = %v", got)
	}
}
