// Package sampling implements SMARTS-style sampled simulation for the HTC
// task model (DESIGN.md §13): a run alternates detailed sample windows —
// batches of tasks executed on the full timing model — with fast-forward
// spans whose tasks execute only on the functional golden model, and the
// total cycle count is extrapolated from the measured windows with a
// reported confidence interval.
//
// The workload model makes this sound: a workload is a shared memory image
// plus large numbers of small, mutually independent tasks, so any task
// subset can be retired functionally without perturbing the architectural
// state the remaining tasks observe, and the chip's steady-state task
// throughput is a well-defined quantity a detailed window can measure.
//
// The schedule is a pure function of the task count and the cadence
// configuration — it never depends on measured rates — so a sampled run is
// bit-reproducible and each window's entry state can be reconstructed
// independently (the property the fan-out path and the checkpoint seeds
// rely on).
package sampling

import (
	"fmt"
	"math"
)

// Config selects the sampling cadence. The zero value disables sampling.
type Config struct {
	// Every is the cadence period in estimated cycles: one detailed window
	// per Every cycles of estimated execution. 0 disables sampling.
	Every uint64
	// Window is the detailed window length target in cycles. Together with
	// Every it fixes the duty ratio Window/Every — the fraction of tasks
	// executed on the timing model. Must be in (0, Every].
	Window uint64
	// Windows caps how many detailed windows the schedule plans (the duty
	// ratio fixes the total detailed task count; Windows splits it into
	// separately measured batches). 0 selects DefaultWindows.
	Windows int
	// MinBatch floors the detailed batch size. A window only measures the
	// machine's steady-state task throughput if its batch keeps every
	// hardware thread saturated through the measured region, so callers set
	// this high enough to fill every thread and keep each core's queue deep
	// (chip.Chip defaults it to 2·(threads + 8·cores)).
	// Batches below the floor shrink the
	// window count and, when necessary, raise the detailed task count above
	// the duty ratio — degrading toward an all-detailed run rather than an
	// inaccurate one. 0 applies no floor.
	MinBatch int
}

// DefaultWindows is the planned window count when Config.Windows is 0.
const DefaultWindows = 4

// Enabled reports whether the configuration requests sampling.
func (c Config) Enabled() bool { return c.Every > 0 }

// Validate rejects malformed cadences.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Window == 0 {
		return fmt.Errorf("sampling: window is 0 (want 0 < window <= every)")
	}
	if c.Window > c.Every {
		return fmt.Errorf("sampling: window %d exceeds cadence period %d", c.Window, c.Every)
	}
	if c.Windows < 0 {
		return fmt.Errorf("sampling: negative window count %d", c.Windows)
	}
	if c.MinBatch < 0 {
		return fmt.Errorf("sampling: negative batch floor %d", c.MinBatch)
	}
	return nil
}

// Span is one contiguous task-index range of a sampled schedule.
type Span struct {
	Start, End int  // task indices [Start, End)
	Detailed   bool // true: detailed sample window; false: fast-forward
}

// Len returns the number of tasks in the span.
func (s Span) Len() int { return s.End - s.Start }

// Schedule is the deterministic execution plan for a sampled run: an
// alternating sequence of detailed windows and fast-forward spans covering
// every task exactly once, in task order. Every fast-forward span is
// preceded by at least one detailed window, so a measured rate is always
// available to charge its cycles.
type Schedule struct {
	Spans         []Span
	DetailedTasks int
	FastTasks     int
}

// Windows counts the detailed windows in the schedule.
func (s *Schedule) Windows() int {
	n := 0
	for _, sp := range s.Spans {
		if sp.Detailed {
			n++
		}
	}
	return n
}

// Plan builds the schedule for a run of tasks under cfg. The duty ratio
// Window/Every fixes the detailed task count D = max(1, round(tasks ·
// Window/Every)); D is split into up to cfg.Windows near-equal batches and
// the remaining tasks are distributed as fast-forward spans after each
// window. A duty ratio of 1 (Window == Every) degenerates to a single
// all-detailed window.
func Plan(tasks int, cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("sampling: Plan called with sampling disabled")
	}
	if tasks <= 0 {
		return nil, fmt.Errorf("sampling: no tasks to plan")
	}
	// Round half-up in uint64 arithmetic: D = round(tasks * Window / Every).
	d := int((uint64(tasks)*cfg.Window + cfg.Every/2) / cfg.Every)
	if d < 1 {
		d = 1
	}
	nw := cfg.Windows
	if nw == 0 {
		nw = DefaultWindows
	}
	if cfg.MinBatch > 0 {
		// Fewer, larger windows before smaller, unsaturated ones; then raise
		// the detailed count to the floor if the duty ratio alone can't fill
		// even one saturated window.
		if maxW := d / cfg.MinBatch; nw > maxW {
			nw = maxW
			if nw < 1 {
				nw = 1
			}
		}
		if d < nw*cfg.MinBatch {
			d = nw * cfg.MinBatch
		}
	}
	if d > tasks {
		d = tasks
	}
	if nw > d {
		nw = d
	}
	fast := tasks - d
	s := &Schedule{DetailedTasks: d, FastTasks: fast}
	next := 0
	for i := 0; i < nw; i++ {
		// Near-equal splits: earlier windows/spans absorb the remainders.
		b := d / nw
		if i < d%nw {
			b++
		}
		f := fast / nw
		if i < fast%nw {
			f++
		}
		s.Spans = append(s.Spans, Span{Start: next, End: next + b, Detailed: true})
		next += b
		if f > 0 {
			s.Spans = append(s.Spans, Span{Start: next, End: next + f, Detailed: false})
			next += f
		}
	}
	if next != tasks {
		panic(fmt.Sprintf("sampling: plan covers %d of %d tasks", next, tasks))
	}
	return s, nil
}

// Window is one measured detailed sample window.
type Window struct {
	Tasks  int     // batch size
	Cycles uint64  // detailed cycles the window consumed (including ramp)
	Rate   float64 // steady-state cycles per task (ramp and tail excluded)
}

// Estimator accumulates window measurements and fast-forward charges into
// the SMARTS extrapolation.
//
// The estimate is Ĉ = C₀ + Σ_{i>0} Bᵢ·xᵢ + Σᵢ Fᵢ·xᵢ: the first window
// contributes its full measured cycles (it carries the run's genuine
// cold-start ramp), later windows contribute their batch at the measured
// steady-state rate (their private ramp/drain overhead is a sampling
// artifact the full-detail run does not pay), and every fast-forward span
// is charged at the rate of the window that preceded it (capturing rate
// drift across the run).
type Estimator struct {
	windows  []Window
	detailed uint64  // real detailed cycles simulated (Σ Cᵢ)
	est      float64 // running estimate Ĉ
	fast     int     // fast-forwarded tasks charged so far
}

// AddWindow records a measured detailed window.
func (e *Estimator) AddWindow(w Window) {
	if len(e.windows) == 0 {
		e.est += float64(w.Cycles)
	} else {
		e.est += float64(w.Tasks) * w.Rate
	}
	e.detailed += w.Cycles
	e.windows = append(e.windows, w)
}

// AddFast charges tasks fast-forwarded after the most recent window at that
// window's rate. It panics if no window has been measured yet (Plan never
// emits such a schedule).
func (e *Estimator) AddFast(tasks int) {
	if len(e.windows) == 0 {
		panic("sampling: fast-forward span before any detailed window")
	}
	e.est += float64(tasks) * e.windows[len(e.windows)-1].Rate
	e.fast += tasks
}

// Rate returns the most recent window's steady-state cycles-per-task.
func (e *Estimator) Rate() float64 {
	if len(e.windows) == 0 {
		return 0
	}
	return e.windows[len(e.windows)-1].Rate
}

// Windows returns the measurements recorded so far.
func (e *Estimator) Windows() []Window { return e.windows }

// DetailedCycles returns the real detailed cycles simulated so far.
func (e *Estimator) DetailedCycles() uint64 { return e.detailed }

// Cycles returns the current cycle estimate Ĉ, rounded.
func (e *Estimator) Cycles() uint64 {
	if e.est <= 0 {
		return 0
	}
	return uint64(math.Round(e.est))
}

// Estimate is the final extrapolation of a sampled run.
type Estimate struct {
	// Cycles is the extrapolated total Ĉ.
	Cycles uint64
	// Detailed is the real detailed cycles simulated (engine time).
	Detailed uint64
	// Windows is the number of measured sample windows.
	Windows int
	// FastTasks is the number of functionally retired tasks.
	FastTasks int
	// RelErr is the 95% confidence half-width of the extrapolated portion,
	// relative to Cycles: the window rates xᵢ are treated as an i.i.d.
	// sample and the Student-t interval on their mean is scaled by the
	// number of rate-charged tasks. 0 when fewer than two windows were
	// measured or nothing was extrapolated.
	RelErr float64
}

// Result computes the final estimate.
func (e *Estimator) Result() Estimate {
	est := Estimate{
		Cycles:    e.Cycles(),
		Detailed:  e.detailed,
		Windows:   len(e.windows),
		FastTasks: e.fast,
	}
	n := len(e.windows)
	if n < 2 || est.Cycles == 0 {
		return est
	}
	// Tasks charged at a measured rate: everything except window 0's batch.
	charged := e.fast
	for _, w := range e.windows[1:] {
		charged += w.Tasks
	}
	if charged == 0 {
		return est
	}
	mean := 0.0
	for _, w := range e.windows {
		mean += w.Rate
	}
	mean /= float64(n)
	var ss float64
	for _, w := range e.windows {
		d := w.Rate - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	half := tQuantile95(n-1) * sd / math.Sqrt(float64(n)) * float64(charged)
	est.RelErr = half / float64(est.Cycles)
	return est
}

// tTable95 holds two-sided 95% Student-t quantiles for 1..30 degrees of
// freedom; beyond the table the normal quantile is close enough.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tQuantile95 returns the two-sided 95% Student-t quantile for df degrees
// of freedom.
func tQuantile95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.960
}
