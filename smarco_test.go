package smarco

import (
	"testing"
)

// TestPublicAPIQuickstart mirrors the README quickstart.
func TestPublicAPIQuickstart(t *testing.T) {
	w := NewWorkload("wordcount", WorkloadConfig{Seed: 1, Tasks: 16, Scale: 512})
	c := NewChip(SmallChip(), w.Mem)
	c.Submit(w.Tasks)
	cycles, err := c.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Instructions == 0 || m.TasksDone != 16 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestPublicAPIXeonBaseline(t *testing.T) {
	w := NewWorkload("search", WorkloadConfig{Seed: 2, Tasks: 8, Scale: 16})
	r := RunOnXeon(Xeon(), w, 8)
	if r.Cycles == 0 || r.Seconds <= 0 {
		t.Fatalf("baseline result: %+v", r)
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMapReduce(t *testing.T) {
	job := NewTeraSortJob(3, 4, 32)
	c := NewChip(SmallChip(), job.Mem)
	st, err := RunMapReduce(c, job, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phases < 2 {
		t.Fatalf("phases = %d", st.Phases)
	}
}

func TestPublicAPITable1(t *testing.T) {
	b := Table1()
	if b.TotalArea() < 750 || b.TotalArea() > 752 {
		t.Fatalf("Table 1 area = %v", b.TotalArea())
	}
}

func TestBenchmarkListStable(t *testing.T) {
	want := []string{"wordcount", "terasort", "search", "kmeans", "kmp", "rnc"}
	if len(Benchmarks) != len(want) {
		t.Fatalf("benchmarks = %v", Benchmarks)
	}
	for i, n := range want {
		if Benchmarks[i] != n {
			t.Fatalf("benchmark %d = %q, want %q", i, Benchmarks[i], n)
		}
	}
}

func TestPublicAPIStaging(t *testing.T) {
	w := NewWorkload("kmp", WorkloadConfig{Seed: 4, Tasks: 8, Scale: 512, StageSPM: true})
	c := NewChip(SmallChip(), w.Mem)
	c.Submit(w.Tasks)
	if _, err := c.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().SPMAccesses == 0 {
		t.Fatal("staged workload produced no SPM accesses")
	}
}

func TestPublicAPICard(t *testing.T) {
	w := NewWorkload("rnc", WorkloadConfig{Seed: 8, Tasks: 8, StageSPM: true})
	cfg := CardConfig{Processors: 2, Chip: SmallChip(), PCIe: DefaultPCIe()}
	c, err := NewCard(cfg, w.Mem)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := c.Run(w.Tasks, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || len(c.Chips()) != 2 {
		t.Fatalf("card run: cycles=%d chips=%d", cycles, len(c.Chips()))
	}
}
