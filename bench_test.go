// Package smarco's benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation (see DESIGN.md's experiment index).
//
// Each benchmark regenerates its result once per iteration and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation at small scale. Set SMARCO_SCALE=paper
// for paper-sized configurations (much slower).
package smarco

import (
	"os"
	"testing"

	"smarco/internal/experiments"
)

func benchScale() experiments.Scale {
	if os.Getenv("SMARCO_SCALE") == "paper" {
		return experiments.ScalePaper
	}
	return experiments.ScaleSmall
}

const benchSeed = 1

func BenchmarkFig01_ConvThreadScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.Fig01ThreadScaling(benchScale(), benchSeed)
		last := results[0].Points[len(results[0].Points)-1]
		b.ReportMetric(last.IdleRatio, "idle-ratio@128t")
		b.ReportMetric(last.StarveRatio, "starve-ratio@128t")
	}
}

func BenchmarkFig01_CacheHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig01CacheHierarchy(benchScale(), benchSeed)
		b.ReportMetric(rows[0].L1Miss, "L1-miss")
		b.ReportMetric(rows[0].LLCLat, "LLC-lat-cycles")
	}
}

func BenchmarkFig02_CDN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig02CDN(benchSeed)
		last := pts[len(pts)-1]
		b.ReportMetric(last.CPUUtil, "cpu-util@limit")
		b.ReportMetric(last.BranchMiss, "branch-miss@limit")
		b.ReportMetric(last.L1Miss, "L1-miss@limit")
	}
}

func BenchmarkFig08_Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig08Granularity(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var htcSmall float64
		n := 0
		for _, r := range rows {
			if !r.Conventional {
				htcSmall += r.Dist.SmallFraction(2)
				n++
			}
		}
		b.ReportMetric(htcSmall/float64(n), "htc-small-frac")
	}
}

func BenchmarkFig17_TCGIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig17TCGIPC(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var at4, at8 float64
		for _, r := range results {
			at4 += r.IPC[4]
			at8 += r.IPC[8]
		}
		b.ReportMetric(at4/float64(len(results)), "mean-IPC@4t")
		b.ReportMetric(at8/float64(len(results)), "mean-IPC@8t")
	}
}

func BenchmarkFig18_HighDensityNoC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig18HighDensityNoC(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var gain2B float64
		for _, r := range results {
			gain2B += r.Throughput[2]
		}
		b.ReportMetric(gain2B/float64(len(results)), "mean-throughput-2B/16B")
	}
}

func BenchmarkFig19_MACTThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig19MACTThreshold(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var at16 float64
		for _, r := range results {
			at16 += r.Speedup[16]
		}
		b.ReportMetric(at16/float64(len(results)), "mean-speedup@16cy")
	}
}

func BenchmarkFig20_MACTComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig20MACTComparison(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var speed, req float64
		for _, r := range results {
			speed += r.Speedup
			req += r.ReqRatio
		}
		n := float64(len(results))
		b.ReportMetric(speed/n, "mean-speedup")
		b.ReportMetric(req/n, "mean-request-ratio")
	}
}

func BenchmarkFig21_Scheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig21Scheduler(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		sw, hw := results[0], results[1]
		b.ReportMetric(float64(sw.Spread), "sw-exit-spread")
		b.ReportMetric(float64(hw.Spread), "hw-exit-spread")
		b.ReportMetric(hw.SuccessRate, "hw-success-rate")
	}
}

func BenchmarkTable1_AreaPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bd := Table1()
		b.ReportMetric(bd.TotalArea(), "area-mm2")
		b.ReportMetric(bd.TotalPower(), "power-W")
	}
}

func BenchmarkTable2_Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2Configs().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig22_VsXeon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig22VsXeon(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var speed, eff float64
		for _, r := range results {
			speed += r.Speedup
			eff += r.EnergyEffGain
		}
		n := float64(len(results))
		b.ReportMetric(speed/n, "mean-speedup")
		b.ReportMetric(eff/n, "mean-energy-eff-gain")
	}
}

func BenchmarkFig23_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig23Scalability(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.SmarCoPerf/last.XeonPerf, "smarco/xeon@max-threads")
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Ablations(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Feature == "in-pair threads" {
				b.ReportMetric(r.Gain["kmp"], "inpair-gain-kmp")
			}
			if r.Feature == "MACT" {
				b.ReportMetric(r.Gain["kmp"], "mact-gain-kmp")
			}
		}
	}
}

// BenchmarkEngineSerial and BenchmarkEngineParallel measure raw cycle-engine
// throughput (simulated cycles per wall-clock second) on the reference
// workload, with allocation counts. BENCH_engine.json records past snapshots;
// regenerate it with `go run ./cmd/smarcobench -engine` after engine work.
func BenchmarkEngineSerial(b *testing.B)   { benchmarkEngine(b, false) }
func BenchmarkEngineParallel(b *testing.B) { benchmarkEngine(b, true) }

func benchmarkEngine(b *testing.B, parallel bool) {
	for _, config := range experiments.EngineBenchConfigs {
		b.Run(config, func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			var wall float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.MeasureEngine(config, parallel)
				if err != nil {
					b.Fatal(err)
				}
				cycles += r.Cycles
				wall += r.WallSeconds
			}
			b.ReportMetric(float64(cycles)/wall, "cycles/sec")
		})
	}
}

func BenchmarkFig26_Prototype(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig26Prototype(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var eff float64
		for _, r := range results {
			eff += r.EnergyEffGain
		}
		b.ReportMetric(eff/float64(len(results)), "mean-energy-eff-gain")
	}
}
