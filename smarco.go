// Package smarco is the public API of the SmarCo reproduction: a
// cycle-level simulator of the many-core high-throughput processor from
// "SmarCo: An Efficient Many-Core Processor for High-Throughput
// Applications in Datacenters" (HPCA 2018), together with the paper's six
// benchmarks, its conventional-processor baseline, its MapReduce
// programming model, and harnesses regenerating every table and figure of
// its evaluation.
//
// Quick start:
//
//	w := smarco.NewWorkload("wordcount", smarco.WorkloadConfig{Seed: 1, Tasks: 32})
//	c := smarco.NewChip(smarco.SmallChip(), w.Mem)
//	c.Submit(w.Tasks)
//	cycles, err := c.Run(10_000_000)
//	...
//	m := c.Metrics()
//
// The exported names are aliases into the implementation packages so the
// full method sets remain available.
package smarco

import (
	"smarco/internal/card"
	"smarco/internal/chip"
	"smarco/internal/conv"
	"smarco/internal/experiments"
	"smarco/internal/fault"
	"smarco/internal/kernels"
	"smarco/internal/mapreduce"
	"smarco/internal/mem"
	"smarco/internal/power"
	"smarco/internal/sched"
)

// Chip is a fully wired SmarCo processor instance.
type Chip = chip.Chip

// ChipConfig sizes a chip (sub-rings, cores, NoC links, MACT, DRAM,
// scheduler policy).
type ChipConfig = chip.Config

// Metrics aggregates chip-wide counters after a run.
type Metrics = chip.Metrics

// Memory is the byte-addressed backing store shared by workloads and chip.
type Memory = mem.Sparse

// Workload is a benchmark instance: a memory image, independent tasks, and
// an output verifier.
type Workload = kernels.Workload

// WorkloadConfig sizes a generated workload.
type WorkloadConfig = kernels.Config

// Task is one schedulable unit of work.
type Task = kernels.Task

// SchedResult records one task's completion (used by the real-time
// experiments).
type SchedResult = sched.Result

// XeonConfig describes the conventional-processor baseline.
type XeonConfig = conv.Config

// XeonResult is the baseline's run report.
type XeonResult = conv.Result

// MapReduceJob is a multi-phase MapReduce computation (§3.6).
type MapReduceJob = mapreduce.Job

// PowerBreakdown is an area/power budget (Table 1).
type PowerBreakdown = power.Breakdown

// Card is a PCIe accelerator card holding one or two SmarCo processors
// (§4.4, Fig. 25).
type Card = card.Card

// CardConfig sizes a card.
type CardConfig = card.Config

// Benchmarks lists the paper's six benchmarks in order: wordcount,
// terasort, search, kmeans, kmp, rnc.
var Benchmarks = kernels.Names

// DefaultChip returns the paper's 256-core, 2048-thread configuration.
func DefaultChip() ChipConfig { return chip.DefaultConfig() }

// SmallChip returns a 16-core configuration that runs in seconds.
func SmallChip() ChipConfig { return chip.SmallConfig() }

// NewChip builds a chip over the given memory image (nil for a fresh one).
// It panics on an invalid configuration; use BuildChip to handle the error.
func NewChip(cfg ChipConfig, store *Memory) *Chip { return chip.New(cfg, store) }

// BuildChip builds a chip over the given memory image, returning an error
// on invalid configuration (bad NoC geometry, bad fault rates, ...).
func BuildChip(cfg ChipConfig, store *Memory) (*Chip, error) { return chip.Build(cfg, store) }

// FaultConfig enables deterministic fault injection on a chip; set it as
// ChipConfig.Fault. See internal/fault for the model.
type FaultConfig = fault.Config

// NewMemory returns an empty memory image.
func NewMemory() *Memory { return mem.NewSparse() }

// NewWorkload builds one of the six paper benchmarks. It panics on an
// unknown name; see Benchmarks.
func NewWorkload(name string, cfg WorkloadConfig) *Workload {
	return kernels.MustNew(name, cfg)
}

// Xeon returns the conventional baseline configuration (Intel Xeon
// E7-8890V4 per Table 2).
func Xeon() XeonConfig { return conv.XeonE78890V4() }

// RunOnXeon executes a workload on the conventional baseline with the
// given software thread count.
func RunOnXeon(cfg XeonConfig, w *Workload, threads int) XeonResult {
	return conv.Run(cfg, w, threads)
}

// NewWordCountJob builds a MapReduce WordCount job (map shards, reduce by
// table-merge tree).
func NewWordCountJob(seed uint64, shards, shardBytes int) MapReduceJob {
	return mapreduce.NewWordCountJob(seed, shards, shardBytes)
}

// NewTeraSortJob builds a MapReduce TeraSort job (map sorts partitions,
// reduce merges runs).
func NewTeraSortJob(seed uint64, partitions, keysPerPart int) MapReduceJob {
	return mapreduce.NewTeraSortJob(seed, partitions, keysPerPart)
}

// RunMapReduce executes a job phase by phase on the chip.
func RunMapReduce(c *Chip, job MapReduceJob, budgetPerPhase uint64) (mapreduce.Stats, error) {
	return mapreduce.Run(c, job, budgetPerPhase)
}

// NewCard builds a PCIe accelerator card over the given memory image.
func NewCard(cfg CardConfig, store *Memory) (*Card, error) { return card.New(cfg, store) }

// DefaultPCIe returns a Gen3 x8-class link model.
func DefaultPCIe() card.PCIeConfig { return card.DefaultPCIe() }

// Table1 returns the paper's Table 1 area/power breakdown (32 nm).
func Table1() PowerBreakdown { return power.Table1() }

// ExperimentScale selects experiment sizing; see internal/experiments.
type ExperimentScale = experiments.Scale

// Experiment scales.
const (
	ScaleSmall = experiments.ScaleSmall
	ScalePaper = experiments.ScalePaper
)
