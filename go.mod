module smarco

go 1.22
